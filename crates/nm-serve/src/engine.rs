//! The top-K retrieval engine.
//!
//! Architecture (see DESIGN.md "Serving"):
//!
//! * a persistent `std::thread` **worker pool**; each scoring pass
//!   fans out over item **shards** that workers claim with an atomic
//!   counter — finished workers steal remaining shards, so an uneven
//!   shard (e.g. a cache-cold tail) never idles the rest of the pool;
//! * a bounded per-domain **batching queue**: the first thread to
//!   arrive becomes the batch leader, drains up to `batch_max`
//!   concurrent same-domain requests, and serves them with one shared
//!   pass over the item table; followers block until the leader posts
//!   their result;
//! * **deterministic top-K**: shard-local bounded selections merged
//!   under the total order of [`nm_eval::rank_order`] (score
//!   descending, then item id ascending), so results are independent
//!   of shard boundaries, worker count, and batching;
//! * a sharded **LRU cache** keyed by `(user, domain, k, epoch)`,
//!   invalidated by bumping the epoch on snapshot reload.

use crate::cache::{CacheKey, CachedList, ShardedLru};
use crate::reqtrace::{ExemplarRing, ReqTiming};
use crate::snapshot::Snapshot;
use crate::stats::Stats;
use crate::sync::{lock, read, wait, write};
use nm_eval::harness::{rank_order, Scorer};
use nm_nn::checkpoint::CheckpointError;
use nm_obs::clock::Stopwatch;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Scoring worker threads.
    pub n_workers: usize,
    /// Items per shard (work-stealing granule).
    pub shard_items: usize,
    /// Max same-domain requests coalesced into one scoring pass.
    pub batch_max: usize,
    /// Total cached recommendation lists (0 disables the cache).
    pub cache_capacity: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// Slowest-request exemplars retained for `{"op":"trace"}`.
    pub exemplar_capacity: usize,
    /// Run the top-K merge `merge_slowdown` times (≥ 1). Anything above
    /// 1 is a deliberate perf-bug injection used by `scripts/ci.sh` to
    /// prove the bench regression gate actually fires; overridable via
    /// the `NMCDR_BENCH_SLOW_MERGE` env var.
    pub merge_slowdown: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            n_workers: thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
            shard_items: 256,
            batch_max: 8,
            cache_capacity: 4096,
            cache_shards: 8,
            exemplar_capacity: 32,
            merge_slowdown: std::env::var("NMCDR_BENCH_SLOW_MERGE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1)
                .max(1),
        }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One `(item, score)` candidate pool per in-flight request, appended
/// to by shard workers under a short lock.
type CandidatePools = Vec<Mutex<Vec<(u32, f32)>>>;

/// Heap entry ordered by [`rank_order`]: `Greater` means *worse*
/// ranked, so a max-heap's root is the worst retained candidate.
struct HeapPair((u32, f32));

impl PartialEq for HeapPair {
    fn eq(&self, other: &Self) -> bool {
        rank_order(&self.0, &other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapPair {}

impl PartialOrd for HeapPair {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapPair {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        rank_order(&self.0, &other.0)
    }
}

/// A bounded top-K selector: a size-`k` max-heap (on *badness*) whose
/// root is evicted whenever a better candidate arrives. `rank_order`'s
/// item-id tie-break makes the retained set — not just its order —
/// deterministic under score ties.
struct BoundedTopK {
    k: usize,
    heap: std::collections::BinaryHeap<HeapPair>,
}

impl BoundedTopK {
    fn new(k: usize) -> Self {
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    #[inline]
    fn push(&mut self, pair: (u32, f32)) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapPair(pair));
        } else if let Some(worst) = self.heap.peek() {
            if rank_order(&pair, &worst.0) == std::cmp::Ordering::Less {
                self.heap.pop();
                self.heap.push(HeapPair(pair));
            }
        }
    }

    /// The retained candidates, in no particular order.
    fn into_unordered(self) -> impl Iterator<Item = (u32, f32)> {
        self.heap.into_iter().map(|h| h.0)
    }
}

struct PoolShared {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Fixed-size thread pool executing boxed jobs.
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(n: usize) -> Self {
        let shared = Arc::new(PoolShared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..n.max(1))
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                // A failed spawn (thread exhaustion) degrades the pool
                // rather than aborting; `submit` falls back to inline
                // execution if no worker came up at all.
                thread::Builder::new()
                    .name(format!("nm-serve-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut q = lock(&shared.jobs);
                            loop {
                                if let Some(job) = q.pop_front() {
                                    break job;
                                }
                                if shared.shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                q = wait(&shared.available, q);
                            }
                        };
                        job();
                    })
                    .ok()
            })
            .collect();
        Self { shared, workers }
    }

    fn submit(&self, job: Job) {
        if self.workers.is_empty() {
            // Degraded mode: no worker threads could be spawned. Run the
            // job on the caller so latches still count down.
            job();
            return;
        }
        lock(&self.shared.jobs).push_back(job);
        self.shared.available.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Stage timing of one shared scoring pass, reported to every request
/// the pass served, plus the snapshot epoch the pass actually scored
/// against (taken *once per batch*, coherently with the snapshot).
#[derive(Debug, Clone, Copy, Default)]
struct BatchTiming {
    fanout_us: u64,
    merge_us: u64,
    epoch: u64,
}

/// A follower's rendezvous slot: the batch leader fills it.
struct ReqSlot {
    result: Mutex<Option<(CachedList, BatchTiming)>>,
    ready: Condvar,
}

impl ReqSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, value: CachedList, timing: BatchTiming) {
        *lock(&self.result) = Some((value, timing));
        self.ready.notify_all();
    }

    fn wait(&self) -> (CachedList, BatchTiming) {
        let mut guard = lock(&self.result);
        loop {
            if let Some((list, timing)) = guard.as_ref() {
                return (Arc::clone(list), *timing);
            }
            guard = wait(&self.ready, guard);
        }
    }
}

struct Pending {
    user: u32,
    k: usize,
    slot: Arc<ReqSlot>,
}

#[derive(Default)]
struct DomainQueue {
    pending: VecDeque<Pending>,
    leader_active: bool,
}

/// Counts outstanding shard jobs of one scoring pass.
struct Latch {
    left: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            left: Mutex::new(n),
            done: Condvar::new(),
        })
    }

    fn count_down(&self) {
        let mut left = lock(&self.left);
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = lock(&self.left);
        while *left > 0 {
            left = wait(&self.done, left);
        }
    }
}

/// The live snapshot and its epoch, swapped together under one lock so
/// no reader can ever observe a new snapshot labelled with an old epoch
/// (or vice versa). The epoch is what keys the cache: a torn pair would
/// let a scoring pass insert new-snapshot results under a pre-reload
/// epoch, poisoning the cache for every later lookup of that key.
struct Versioned {
    epoch: u64,
    snap: Arc<Snapshot>,
}

/// The online retrieval engine. Cheap to share: wrap in `Arc` and call
/// [`Engine::topk`] from any number of threads.
pub struct Engine {
    versioned: RwLock<Versioned>,
    /// Lock-free mirror of `versioned.epoch` for cheap reads (cache
    /// lookups, stats). Only `reload` writes it, inside the write lock.
    epoch_mirror: AtomicU64,
    pool: WorkerPool,
    queues: [Mutex<DomainQueue>; 2],
    cache: Option<ShardedLru>,
    stats: Arc<Stats>,
    reqtrace: ExemplarRing,
    cfg: EngineConfig,
}

impl Engine {
    /// Builds an engine over a validated snapshot. Rejects (rather than
    /// panics on) a structurally inconsistent snapshot so callers can
    /// surface the failure as a protocol/CLI error.
    pub fn new(snapshot: Snapshot, cfg: EngineConfig) -> Result<Self, CheckpointError> {
        snapshot.validate()?;
        let cache =
            (cfg.cache_capacity > 0).then(|| ShardedLru::new(cfg.cache_capacity, cfg.cache_shards));
        Ok(Self {
            versioned: RwLock::new(Versioned {
                epoch: 0,
                snap: Arc::new(snapshot),
            }),
            epoch_mirror: AtomicU64::new(0),
            pool: WorkerPool::new(cfg.n_workers),
            queues: [
                Mutex::new(DomainQueue::default()),
                Mutex::new(DomainQueue::default()),
            ],
            cache,
            stats: Arc::new(Stats::new()),
            reqtrace: ExemplarRing::new(cfg.exemplar_capacity),
            cfg,
        })
    }

    /// Shared observability counters.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// The slowest-N request exemplar ring (request-id allocator and
    /// backing store for the `{"op":"trace"}` wire request).
    pub fn exemplars(&self) -> &ExemplarRing {
        &self.reqtrace
    }

    /// Current snapshot epoch (bumped on every [`Engine::reload`]).
    pub fn epoch(&self) -> u64 {
        self.epoch_mirror.load(Ordering::Acquire)
    }

    /// The live snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&read(&self.versioned).snap)
    }

    /// The live `(epoch, snapshot)` pair, read coherently.
    fn current(&self) -> (u64, Arc<Snapshot>) {
        let g = read(&self.versioned);
        (g.epoch, Arc::clone(&g.snap))
    }

    /// Swaps in a new snapshot, bumps the epoch, and clears the cache.
    /// The swap and the bump happen atomically under the write lock, so
    /// an in-flight scoring pass sees either the old pair or the new
    /// pair — never a new snapshot under an old epoch. On a validation
    /// failure the live snapshot is left untouched and the error is
    /// returned for the caller to report.
    pub fn reload(&self, snapshot: Snapshot) -> Result<(), CheckpointError> {
        snapshot.validate()?;
        {
            let mut g = write(&self.versioned);
            g.epoch += 1;
            g.snap = Arc::new(snapshot);
            self.epoch_mirror.store(g.epoch, Ordering::Release);
        }
        if let Some(c) = &self.cache {
            c.clear();
        }
        Ok(())
    }

    /// Scores `(user, item)` pairs against the live snapshot — the
    /// parity path audited by [`nm_eval::evaluate_ranking`].
    pub fn score(&self, domain: usize, users: &[u32], items: &[u32]) -> Vec<f32> {
        self.snapshot().score_pairs(domain, users, items)
    }

    /// A [`Scorer`] view of one domain, for offline metric audits.
    pub fn scorer(&self, domain: usize) -> EngineScorer<'_> {
        EngineScorer {
            engine: self,
            domain,
        }
    }

    /// Top-`k` items of `domain` for `user` (score descending, ties by
    /// item id). `(hit, list)` — `hit` reports whether the answer came
    /// from the cache.
    pub fn topk(&self, domain: usize, user: u32, k: usize) -> (bool, CachedList) {
        let (list, t) = self.topk_traced(domain, user, k);
        (t.cache_hit, list)
    }

    /// [`Engine::topk`] plus the per-stage [`ReqTiming`] breakdown the
    /// server attaches to slow-request exemplars.
    pub fn topk_traced(&self, domain: usize, user: u32, k: usize) -> (CachedList, ReqTiming) {
        self.stats.requests.inc();
        let mut t = ReqTiming::default();
        let epoch = self.epoch();
        let key = CacheKey {
            user,
            domain: domain as u8,
            k: k as u32,
            epoch,
        };
        let cache_sw = Stopwatch::start();
        if let Some(c) = &self.cache {
            let _s = nm_obs::trace::span("serve.cache");
            if let Some(hit) = c.get(&key) {
                self.stats.cache_hits.inc();
                t.cache_us = cache_sw.elapsed_us();
                t.cache_hit = true;
                t.epoch = epoch;
                return (hit, t);
            }
            self.stats.cache_misses.inc();
        }
        t.cache_us = cache_sw.elapsed_us();
        let slot = ReqSlot::new();
        let lock_sw = Stopwatch::start();
        let become_leader = {
            let mut q = lock(&self.queues[domain]);
            t.lock_us = lock_sw.elapsed_us();
            t.queue_depth = q.pending.len() as u64;
            q.pending.push_back(Pending {
                user,
                k,
                slot: Arc::clone(&slot),
            });
            if q.leader_active {
                false
            } else {
                q.leader_active = true;
                true
            }
        };
        if become_leader {
            self.lead_batches(domain);
        } else {
            t.coalesced = true;
        }
        let wait_sw = Stopwatch::start();
        let (list, bt) = {
            let _s = nm_obs::trace::span("serve.coalesce");
            slot.wait()
        };
        if t.coalesced {
            t.coalesce_us = wait_sw.elapsed_us();
        }
        t.fanout_us = bt.fanout_us;
        t.merge_us = bt.merge_us;
        t.epoch = bt.epoch;
        (list, t)
    }

    /// Batch leader loop: drain the domain queue in `batch_max` chunks
    /// until it is empty, then hand leadership back. Each batch's cache
    /// inserts use the epoch *of that batch's scoring pass* (a reload
    /// can land between two drained batches of the same leader session;
    /// labelling every batch with the session-entry epoch would insert
    /// post-reload results under the pre-reload key).
    fn lead_batches(&self, domain: usize) {
        loop {
            let batch: Vec<Pending> = {
                let mut q = lock(&self.queues[domain]);
                let n = q.pending.len().min(self.cfg.batch_max);
                if n == 0 {
                    q.leader_active = false;
                    return;
                }
                q.pending.drain(..n).collect()
            };
            self.stats.batches.inc();
            if batch.len() > 1 {
                self.stats.coalesced.add(batch.len() as u64);
            }
            let (results, timing) = self.run_batch(domain, &batch);
            for (req, list) in batch.iter().zip(results) {
                if let Some(c) = &self.cache {
                    c.insert(
                        CacheKey {
                            user: req.user,
                            domain: domain as u8,
                            k: req.k as u32,
                            epoch: timing.epoch,
                        },
                        Arc::clone(&list),
                    );
                }
                req.slot.fill(list, timing);
            }
        }
    }

    /// One shared scoring pass: every worker claims item shards off an
    /// atomic counter and, per shard, scores *all* batched users over
    /// that item block (one streaming read of the block serves the
    /// whole batch).
    fn run_batch(&self, domain: usize, batch: &[Pending]) -> (Vec<CachedList>, BatchTiming) {
        // One coherent read per batch: every shard of this pass scores
        // the same snapshot, and the batch is labelled with its epoch.
        let (epoch, snap) = self.current();
        let n_items = snap.n_items(domain);
        if n_items == 0 {
            let empty = batch.iter().map(|_| Arc::new(Vec::new())).collect();
            return (
                empty,
                BatchTiming {
                    epoch,
                    ..Default::default()
                },
            );
        }
        let shard_items = self.cfg.shard_items.max(1);
        let n_shards = n_items.div_ceil(shard_items);
        let k_max = batch.iter().map(|r| r.k).max().unwrap_or(0).min(n_items);
        let users: Vec<u32> = batch.iter().map(|r| r.user).collect();

        // Per-request candidate pools; each shard contributes at most
        // k_max pairs per request, appended under a short lock.
        let candidates: Arc<CandidatePools> =
            Arc::new(users.iter().map(|_| Mutex::new(Vec::new())).collect());
        let next_shard = Arc::new(AtomicUsize::new(0));
        let n_jobs = self.cfg.n_workers.min(n_shards).max(1);
        let latch = Latch::new(n_jobs);

        let fanout_sw = Stopwatch::start();
        let fanout_span = nm_obs::trace::span("serve.fanout");
        for _ in 0..n_jobs {
            let snap = Arc::clone(&snap);
            let users = users.clone();
            let candidates = Arc::clone(&candidates);
            let next_shard = Arc::clone(&next_shard);
            let latch = Arc::clone(&latch);
            self.pool.submit(Box::new(move || {
                let mut scores = vec![0.0f32; shard_items];
                loop {
                    let s = next_shard.fetch_add(1, Ordering::Relaxed);
                    if s >= n_shards {
                        break;
                    }
                    let lo = s * shard_items;
                    let hi = (lo + shard_items).min(n_items);
                    for (r, &user) in users.iter().enumerate() {
                        let out = &mut scores[..hi - lo];
                        snap.score_user_range(domain, user, lo, hi, out);
                        let mut local = BoundedTopK::new(k_max);
                        for (j, &sc) in out.iter().enumerate() {
                            local.push(((lo + j) as u32, sc));
                        }
                        lock(&candidates[r]).extend(local.into_unordered());
                    }
                }
                latch.count_down();
            }));
        }
        latch.wait();
        drop(fanout_span);
        let fanout_us = fanout_sw.elapsed_us();

        let merge_sw = Stopwatch::start();
        let _merge_span = nm_obs::trace::span("serve.merge");
        let slowdown = self.cfg.merge_slowdown.max(1);
        let lists = batch
            .iter()
            .enumerate()
            .map(|(r, req)| {
                let mut pool = lock(&candidates[r]);
                // Injected perf bug for the CI gate self-test: redo the
                // sort on throwaway clones of the unsorted pool.
                for _ in 1..slowdown {
                    let mut again = pool.clone();
                    again.sort_by(rank_order);
                    std::hint::black_box(&again);
                }
                // Shard append order varies with scheduling; the total
                // order of rank_order makes the final sort canonical.
                pool.sort_by(rank_order);
                pool.truncate(req.k);
                Arc::new(std::mem::take(&mut *pool))
            })
            .collect();
        let timing = BatchTiming {
            fanout_us,
            merge_us: merge_sw.elapsed_us(),
            epoch,
        };
        (lists, timing)
    }
}

/// Borrowed [`Scorer`] over one domain of an [`Engine`].
pub struct EngineScorer<'a> {
    engine: &'a Engine,
    domain: usize,
}

impl Scorer for EngineScorer<'_> {
    fn score(&self, users: &[u32], items: &[u32]) -> Vec<f32> {
        self.engine.score(self.domain, users, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{DomainSnapshot, HeadKind};
    use nm_eval::harness::top_k;
    use nm_tensor::{Tensor, TensorRng};

    #[test]
    fn bounded_heap_matches_sorting_top_k() {
        let mut rng = TensorRng::seed_from(3);
        for k in [0usize, 1, 5, 50, 500] {
            // include duplicated scores to exercise the id tie-break
            let pairs: Vec<(u32, f32)> = (0..200u32)
                .map(|i| (i, (rng.uniform(0.0, 8.0)).floor()))
                .collect();
            let want = top_k(&pairs, k);
            let mut heap = BoundedTopK::new(k);
            for &p in &pairs {
                heap.push(p);
            }
            let mut got: Vec<(u32, f32)> = heap.into_unordered().collect();
            got.sort_by(rank_order);
            assert_eq!(got, want, "k={k}");
        }
    }

    fn snapshot(n_items: usize, seed: u64) -> Snapshot {
        let mut rng = TensorRng::seed_from(seed);
        let mk = |rng: &mut TensorRng| DomainSnapshot {
            users: Tensor::randn(10, 6, 1.0, rng),
            items: Tensor::randn(n_items, 6, 1.0, rng),
            head: HeadKind::Dot,
        };
        Snapshot {
            model: "test".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        }
    }

    fn engine(n_items: usize, workers: usize) -> Engine {
        Engine::new(
            snapshot(n_items, 7),
            EngineConfig {
                n_workers: workers,
                shard_items: 16,
                ..Default::default()
            },
        )
        .expect("valid test snapshot")
    }

    /// Reference: brute-force top-k from score_pairs.
    fn reference_topk(e: &Engine, domain: usize, user: u32, k: usize) -> Vec<(u32, f32)> {
        let snap = e.snapshot();
        let n = snap.n_items(domain);
        let items: Vec<u32> = (0..n as u32).collect();
        let scores = snap.score_pairs(domain, &vec![user; n], &items);
        let pairs: Vec<(u32, f32)> = items.into_iter().zip(scores).collect();
        top_k(&pairs, k)
    }

    #[test]
    fn topk_matches_bruteforce_across_shard_boundaries() {
        for workers in [1, 4] {
            let e = engine(100, workers);
            for domain in 0..2 {
                for user in [0u32, 3, 9] {
                    for k in [1, 7, 16, 100, 500] {
                        let (_, got) = e.topk(domain, user, k);
                        let want = reference_topk(&e, domain, user, k);
                        assert_eq!(*got, want, "w={workers} d={domain} u={user} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn cache_hits_on_repeat_and_misses_after_reload() {
        let e = engine(64, 2);
        let (hit1, first) = e.topk(0, 1, 5);
        assert!(!hit1);
        let (hit2, second) = e.topk(0, 1, 5);
        assert!(hit2, "second identical query must be a cache hit");
        assert_eq!(first, second);
        assert_eq!(e.stats().cache_hits.get(), 1);

        e.reload(snapshot(64, 99)).expect("valid reload snapshot");
        assert_eq!(e.epoch(), 1);
        let (hit3, third) = e.topk(0, 1, 5);
        assert!(!hit3, "reload must invalidate the cache");
        // different snapshot ⇒ (almost surely) different list
        assert_ne!(first, third);
    }

    #[test]
    fn concurrent_requests_are_coalesced_and_correct() {
        let e = Arc::new(
            Engine::new(
                snapshot(200, 5),
                EngineConfig {
                    n_workers: 2,
                    shard_items: 32,
                    cache_capacity: 0, // force every request through scoring
                    ..Default::default()
                },
            )
            .expect("valid test snapshot"),
        );
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let e = Arc::clone(&e);
            handles.push(thread::spawn(move || {
                let user = t % 10;
                let (_, got) = e.topk(0, user, 10);
                (user, got)
            }));
        }
        for h in handles {
            let (user, got) = h.join().unwrap();
            let want = reference_topk(&e, 0, user, 10);
            assert_eq!(*got, want, "user {user}");
        }
        // all requests accounted for
        assert_eq!(e.stats().requests.get(), 8);
    }

    #[test]
    fn scorer_view_matches_snapshot_pairs() {
        let e = engine(30, 1);
        let users = vec![2u32; 30];
        let items: Vec<u32> = (0..30).collect();
        let via_scorer = e.scorer(1).score(&users, &items);
        let via_snapshot = e.snapshot().score_pairs(1, &users, &items);
        assert_eq!(via_scorer, via_snapshot);
    }

    #[test]
    fn traced_topk_reports_cache_and_stage_flags() {
        let e = engine(64, 2);
        let (first, t1) = e.topk_traced(0, 1, 5);
        assert!(!t1.cache_hit, "cold cache must miss");
        assert!(!t1.coalesced, "single caller is its own batch leader");
        let (second, t2) = e.topk_traced(0, 1, 5);
        assert!(t2.cache_hit, "repeat query must hit");
        assert_eq!(first, second);
        // a cache hit never touches the scoring pass
        assert_eq!(t2.fanout_us, 0);
        assert_eq!(t2.merge_us, 0);
        assert!(!t2.coalesced);
    }

    #[test]
    fn merge_slowdown_injection_does_not_change_results() {
        let mk = |slowdown| {
            Engine::new(
                snapshot(100, 7),
                EngineConfig {
                    n_workers: 2,
                    shard_items: 16,
                    cache_capacity: 0,
                    merge_slowdown: slowdown,
                    ..Default::default()
                },
            )
            .expect("valid test snapshot")
        };
        let fast = mk(1);
        let slow = mk(4);
        for user in [0u32, 5, 9] {
            let (_, a) = fast.topk(0, user, 10);
            let (_, b) = slow.topk(0, user, 10);
            assert_eq!(a, b, "user {user}");
        }
    }

    /// Reference top-k straight off a snapshot value (no engine).
    fn snapshot_topk(snap: &Snapshot, domain: usize, user: u32, k: usize) -> Vec<(u32, f32)> {
        let n = snap.n_items(domain);
        let items: Vec<u32> = (0..n as u32).collect();
        let scores = snap.score_pairs(domain, &vec![user; n], &items);
        let pairs: Vec<(u32, f32)> = items.into_iter().zip(scores).collect();
        top_k(&pairs, k)
    }

    /// Regression test for the reload/epoch race: the epoch used to be
    /// read once per *leader session* while the snapshot was fetched
    /// fresh per batch, so a reload landing between the two could label
    /// new-snapshot results (and cache entries) with the old epoch.
    /// Hammer reloads under concurrent queries and assert every answer
    /// bit-matches the reference top-k of the snapshot version named by
    /// its reported epoch.
    #[test]
    fn reload_under_concurrent_queries_is_epoch_coherent() {
        const VERSIONS: usize = 5;
        const RELOADS: u64 = 120;
        const QUERIES: usize = 400;
        let versions: Vec<Snapshot> = (0..VERSIONS)
            .map(|i| snapshot(64, 100 + i as u64))
            .collect();
        // epoch e serves versions[e % VERSIONS]
        let refs: Vec<Vec<Vec<(u32, f32)>>> = versions
            .iter()
            .map(|s| (0..10).map(|u| snapshot_topk(s, 0, u, 10)).collect())
            .collect();
        let e = Arc::new(
            Engine::new(
                versions[0].clone(),
                EngineConfig {
                    n_workers: 2,
                    shard_items: 16,
                    batch_max: 4,
                    cache_capacity: 256,
                    cache_shards: 2,
                    ..Default::default()
                },
            )
            .expect("valid test snapshot"),
        );
        let reloader = {
            let e = Arc::clone(&e);
            let versions = versions.clone();
            thread::spawn(move || {
                for k in 1..=RELOADS {
                    e.reload(versions[(k % VERSIONS as u64) as usize].clone())
                        .expect("valid reload snapshot");
                    thread::yield_now();
                }
            })
        };
        let queriers: Vec<_> = (0..4u32)
            .map(|q| {
                let e = Arc::clone(&e);
                thread::spawn(move || {
                    let mut got = Vec::with_capacity(QUERIES);
                    for i in 0..QUERIES {
                        let user = (q.wrapping_mul(7).wrapping_add(i as u32)) % 10;
                        let (list, t) = e.topk_traced(0, user, 10);
                        got.push((user, t.epoch, list));
                    }
                    got
                })
            })
            .collect();
        reloader.join().expect("reloader thread");
        for h in queriers {
            for (user, epoch, list) in h.join().expect("querier thread") {
                let want = &refs[(epoch % VERSIONS as u64) as usize][user as usize];
                assert_eq!(
                    *list, *want,
                    "user {user} answered under epoch {epoch} does not match \
                     that epoch's snapshot"
                );
            }
        }
        assert_eq!(e.epoch(), RELOADS);
    }

    #[test]
    fn k_larger_than_catalog_returns_all_items() {
        let e = engine(12, 2);
        let (_, list) = e.topk(0, 0, 100);
        assert_eq!(list.len(), 12);
        // sorted by rank_order
        for w in list.windows(2) {
            assert!(rank_order(&w[0], &w[1]) != std::cmp::Ordering::Greater);
        }
    }
}
