//! # nm-serve — online inference & top-K retrieval
//!
//! Serving layer for trained NMCDR models and baselines:
//!
//! * [`snapshot`] — a frozen, versioned binary export (`NMSS`) of the
//!   user/item embedding tables and prediction heads, produced from a
//!   trained model via the [`FrozenModel`] trait;
//! * [`engine`] — a batched, multi-threaded top-K scoring engine with
//!   work-stealing over item shards, request coalescing, and a sharded
//!   LRU result cache;
//! * [`server`] + [`protocol`] — a `std::net` TCP server speaking
//!   newline-delimited JSON;
//! * [`stats`] — QPS counters and latency histograms, registered in a
//!   shared [`nm_obs`] metrics registry (served raw by the `obs` op);
//! * [`reqtrace`] — per-request stage timing, the slowest-N exemplar
//!   ring, and its rendering to the schema-v1 trace format (served by
//!   the `trace` op);
//! * [`json`] — the dependency-free JSON used on the wire (re-exported
//!   from [`nm_obs::json`]);
//! * [`supervise`] — a supervision tree for worker threads: restart
//!   with deterministic backoff under a budget, then quarantine;
//! * [`breaker`] — per-shard circuit breakers with pass-ordinal (not
//!   wall-clock) cooldowns and single-probe half-open recovery;
//! * [`chaos`] — deterministic fault injection ([`ChaosConfig`]) keyed
//!   on logical coordinates, plus clock-free [`Deadline`]s; same seed,
//!   same fault schedule, same responses (see DESIGN.md "Failure model
//!   & degraded modes").
//!
//! Everything is `std`-only; the crate adds no external dependencies.

pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod engine;
pub mod json;
pub mod protocol;
pub mod reqtrace;
pub mod server;
pub mod snapshot;
pub mod stats;
pub mod supervise;
mod sync;

pub use breaker::{Admission, BreakerConfig, BreakerState, ShardBreakers, Transition};
pub use cache::{CacheKey, CachedList, ShardedLru};
pub use chaos::{seeded_backoff, Chaos, ChaosConfig, Deadline};
pub use engine::{Engine, EngineConfig, EngineScorer, ResilienceConfig};
pub use json::Json;
pub use protocol::Request;
pub use reqtrace::{DegradedKind, Exemplar, ExemplarRing, ReqTiming, StageUs};
pub use server::{Server, ServerConfig};
pub use snapshot::{DomainSnapshot, FrozenModel, HeadKind, MlpHead, Snapshot};
pub use stats::{LatencyHistogram, Stats};
pub use supervise::{ChildSpec, RestartPolicy, SupCounters, Supervisor};
