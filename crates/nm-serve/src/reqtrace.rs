//! Per-request tracing: stage timings, the slowest-N exemplar ring,
//! and rendering exemplars back into the schema-v1 trace format.
//!
//! Every request the server handles gets a deterministic id (a single
//! atomic counter) and a [`StageUs`] breakdown measured with
//! [`nm_obs::clock`]: parse → cache lookup → coalesce wait → shard
//! fan-out → top-K merge → serialize. The slowest requests are retained
//! in a bounded [`ExemplarRing`] and exposed by the `{"op":"trace"}`
//! wire request.
//!
//! Stage semantics:
//!
//! * `coalesce` is the *exclusive* wait of a follower request — time
//!   parked on the batch leader minus the shared pass's fan-out and
//!   merge time, which are reported in their own stages. A batch
//!   leader has `coalesce == 0`.
//! * `fanout`/`merge` for a coalesced request describe the shared
//!   scoring pass that produced its answer (they are batch-level, not
//!   exclusive to this request).
//! * A leader that kept draining the queue after its own result spends
//!   that extra time leading other batches; it shows up as root-span
//!   self time, not as a stage.
//!
//! [`render_trace`] lays each exemplar out as one synthetic thread
//! (`tid` = request id): the stage spans in wall order, one typed
//! `serve.exemplar` event carrying queue depth / lock wait / shed
//! state, then the `serve.request` root span. The output passes the
//! strict `nmcdr obs validate` schema, so every offline tool
//! (`obs report`, `obs flame`) works on serving exemplars unchanged.

use nm_sync::{Ranked, SlowRing, StdBackend};
use std::fmt::Write as _;

/// Per-stage elapsed microseconds of one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageUs {
    pub parse: u64,
    pub cache: u64,
    pub coalesce: u64,
    pub fanout: u64,
    pub merge: u64,
    pub serialize: u64,
}

impl StageUs {
    /// Stage names and values in request wall order.
    pub fn named(&self) -> [(&'static str, u64); 6] {
        [
            ("serve.parse", self.parse),
            ("serve.cache", self.cache),
            ("serve.coalesce", self.coalesce),
            ("serve.fanout", self.fanout),
            ("serve.merge", self.merge),
            ("serve.serialize", self.serialize),
        ]
    }

    pub fn sum(&self) -> u64 {
        self.named().iter().map(|(_, v)| v).sum()
    }
}

/// How a request's answer was degraded (`None` = full fidelity).
/// Degraded answers are never cached under the live epoch, so a
/// recovered engine re-scores them at full fidelity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradedKind {
    /// Full-fidelity answer from a healthy scoring pass.
    #[default]
    None,
    /// The scoring pass lost shards (failed or breaker-skipped); the
    /// answer covers only the surviving slice of the catalog.
    Partial,
    /// Served from the epoch-agnostic stale cache: the last good
    /// answer for this `(user, domain, k)`, possibly from an older
    /// snapshot.
    Stale,
    /// No fallback available; an empty list was returned.
    Unavailable,
}

impl DegradedKind {
    /// Wire/trace label (the `reason` field of a degraded response).
    pub fn as_str(&self) -> &'static str {
        match self {
            DegradedKind::None => "none",
            DegradedKind::Partial => "partial",
            DegradedKind::Stale => "stale",
            DegradedKind::Unavailable => "unavailable",
        }
    }
}

/// Stage timing the engine measures for one `topk` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReqTiming {
    /// Cache probe duration.
    pub cache_us: u64,
    /// Time to acquire the domain queue lock (lock-held time of
    /// whoever held it before us).
    pub lock_us: u64,
    /// Requests already pending in the domain queue at enqueue.
    pub queue_depth: u64,
    /// Total time parked on the batch leader (0 for the leader).
    pub coalesce_us: u64,
    /// Shared scoring pass: shard fan-out (submit + work + latch).
    pub fanout_us: u64,
    /// Shared scoring pass: sort/truncate merge of candidate pools.
    pub merge_us: u64,
    pub cache_hit: bool,
    /// True when this request was served by another thread's batch.
    pub coalesced: bool,
    /// Snapshot epoch the answer came from: the epoch of the scoring
    /// pass that produced it (taken once per coalesced batch, coherent
    /// with the snapshot the pass scored), or the lookup epoch on a
    /// cache hit.
    pub epoch: u64,
    /// Degradation of this answer (shed shards, stale fallback, …).
    pub degraded: DegradedKind,
    /// True when the request's deadline expired before a full answer
    /// was ready (the response is whatever degraded mode was reachable
    /// within budget).
    pub deadline_hit: bool,
}

/// One captured slow request.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    pub id: u64,
    pub domain: usize,
    pub user: u32,
    pub k: usize,
    /// Request start in the [`nm_obs::clock`] domain.
    pub start_us: u64,
    pub total_us: u64,
    pub stages: StageUs,
    pub queue_depth: u64,
    pub lock_us: u64,
    pub cache_hit: bool,
    pub coalesced: bool,
    /// Value of the shed counter when this request was captured.
    pub shed_seen: u64,
}

/// The ring ranks exemplars by total latency; the request id doubles
/// as the tiebreak identity (ties keep the older entry, so the
/// retained set is deterministic for a deterministic request
/// sequence).
impl Ranked for Exemplar {
    fn weight(&self) -> u64 {
        self.total_us
    }

    fn seq(&self) -> u64 {
        self.id
    }
}

/// Bounded ring retaining the slowest-N requests by `total_us`. A new
/// exemplar evicts the current fastest entry once the ring is full.
/// The ring algorithm itself is [`nm_sync::SlowRing`] — instantiated
/// here with the zero-cost std backend, and model-checked as-is by
/// `nmcdr check` under the virtual backend.
pub struct ExemplarRing {
    ring: SlowRing<Exemplar, StdBackend>,
}

impl ExemplarRing {
    pub fn new(cap: usize) -> Self {
        Self {
            ring: SlowRing::new(cap),
        }
    }

    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Allocates the next request id (deterministic: 0, 1, 2, …).
    pub fn next_id(&self) -> u64 {
        self.ring.next_seq()
    }

    /// Offers an exemplar; keeps it only if the ring has room or it is
    /// slower than the current fastest retained entry.
    pub fn record(&self, ex: Exemplar) {
        self.ring.record(ex);
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retained exemplars, slowest first (ties by id ascending).
    pub fn slowest(&self) -> Vec<Exemplar> {
        self.ring.snapshot()
    }
}

struct SpanLine<'a> {
    name: &'a str,
    start_us: u64,
    dur_us: u64,
    self_us: u64,
    depth: u64,
}

fn span_line(out: &mut String, tid: u64, seq: u64, s: SpanLine<'_>) {
    let SpanLine {
        name,
        start_us,
        dur_us,
        self_us,
        depth,
    } = s;
    let _ = writeln!(
        out,
        "{{\"t\":\"span\",\"name\":\"{name}\",\"start_us\":{start_us},\"dur_us\":{dur_us},\
         \"self_us\":{self_us},\"depth\":{depth},\"tid\":{tid},\"seq\":{seq}}}"
    );
}

/// Renders exemplars as one schema-v1 trace document (line-JSON).
///
/// Each exemplar becomes its own synthetic thread (`tid` = request id):
/// the non-zero stage spans laid out back-to-back from the request
/// start, a `serve.exemplar` event with the typed context fields at
/// the request end, and finally the `serve.request` root span whose
/// self time is the instrumentation-uncovered remainder. Stage
/// durations are clamped so children never outrun the root, keeping
/// the output valid under the strict `obs validate` rules.
pub fn render_trace(exemplars: &[Exemplar]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"t\":\"meta\",\"version\":1,\"clock\":\"monotonic_us\",\"seq\":0}}"
    );
    let mut seq = 1u64;
    for ex in exemplars {
        let tid = ex.id;
        let mut off = 0u64;
        for (name, dur) in ex.stages.named() {
            let dur = dur.min(ex.total_us.saturating_sub(off));
            if dur == 0 {
                continue;
            }
            span_line(
                &mut out,
                tid,
                seq,
                SpanLine {
                    name,
                    start_us: ex.start_us + off,
                    dur_us: dur,
                    self_us: dur,
                    depth: 1,
                },
            );
            seq += 1;
            off += dur;
        }
        let end_us = ex.start_us + ex.total_us;
        let _ = writeln!(
            out,
            "{{\"t\":\"event\",\"name\":\"serve.exemplar\",\"at_us\":{end_us},\"tid\":{tid},\
             \"seq\":{seq},\"f\":{{\"id\":{},\"domain\":{},\"user\":{},\"k\":{},\
             \"queue_depth\":{},\"lock_us\":{},\"cache_hit\":{},\"coalesced\":{},\"shed\":{}}}}}",
            ex.id,
            ex.domain,
            ex.user,
            ex.k,
            ex.queue_depth,
            ex.lock_us,
            ex.cache_hit,
            ex.coalesced,
            ex.shed_seen
        );
        seq += 1;
        span_line(
            &mut out,
            tid,
            seq,
            SpanLine {
                name: "serve.request",
                start_us: ex.start_us,
                dur_us: ex.total_us,
                self_us: ex.total_us.saturating_sub(off),
                depth: 0,
            },
        );
        seq += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_obs::parse::parse_trace;
    use nm_obs::report::validate;

    fn exemplar(id: u64, total_us: u64) -> Exemplar {
        Exemplar {
            id,
            domain: 0,
            user: id as u32,
            k: 10,
            start_us: 1_000 * id,
            total_us,
            stages: StageUs {
                parse: total_us / 10,
                cache: total_us / 10,
                coalesce: 0,
                fanout: total_us / 2,
                merge: total_us / 5,
                serialize: total_us / 10,
            },
            queue_depth: 3,
            lock_us: 2,
            cache_hit: false,
            coalesced: false,
            shed_seen: 0,
        }
    }

    #[test]
    fn ring_retains_the_slowest_n() {
        let ring = ExemplarRing::new(3);
        for (id, total) in [(0, 50), (1, 500), (2, 30), (3, 200), (4, 100), (5, 40)] {
            ring.record(exemplar(id, total));
        }
        let slowest = ring.slowest();
        let kept: Vec<(u64, u64)> = slowest.iter().map(|e| (e.id, e.total_us)).collect();
        assert_eq!(kept, vec![(1, 500), (3, 200), (4, 100)]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn ring_tie_keeps_the_older_entry() {
        let ring = ExemplarRing::new(1);
        ring.record(exemplar(0, 100));
        ring.record(exemplar(1, 100)); // equal total: not strictly slower
        assert_eq!(ring.slowest()[0].id, 0);
        ring.record(exemplar(2, 101));
        assert_eq!(ring.slowest()[0].id, 2);
    }

    #[test]
    fn ids_are_deterministic() {
        let ring = ExemplarRing::new(4);
        assert_eq!(ring.next_id(), 0);
        assert_eq!(ring.next_id(), 1);
        assert_eq!(ring.next_id(), 2);
    }

    #[test]
    fn rendered_trace_passes_strict_validation() {
        let exs = vec![exemplar(7, 1_000), exemplar(3, 500)];
        let text = render_trace(&exs);
        let recs = parse_trace(&text).expect("strict parse");
        let s = validate(&recs).expect("structurally valid");
        // 5 non-zero stages + 1 root per exemplar
        assert_eq!(s.spans, 12);
        assert_eq!(s.events, 2);
    }

    #[test]
    fn rendered_stage_time_is_conserved() {
        let exs = vec![exemplar(0, 1_000)];
        let text = render_trace(&exs);
        let recs = parse_trace(&text).unwrap();
        let folded = nm_obs::flame::fold(&recs);
        // folded self-time sums exactly to the root span duration
        assert_eq!(nm_obs::flame::total_us(&folded), 1_000);
        let collapsed = nm_obs::flame::render_collapsed(&folded);
        assert!(
            collapsed.contains("serve.request;serve.merge 200"),
            "{collapsed}"
        );
    }

    #[test]
    fn oversized_stages_are_clamped_to_the_root() {
        let mut ex = exemplar(0, 100);
        ex.stages.fanout = 10_000; // lying stage must not outrun the root
        let text = render_trace(&[ex]);
        let recs = parse_trace(&text).unwrap();
        validate(&recs).expect("clamped trace stays valid");
    }

    #[test]
    fn empty_ring_renders_a_valid_empty_trace() {
        let text = render_trace(&[]);
        let recs = parse_trace(&text).unwrap();
        let s = validate(&recs).unwrap();
        assert_eq!(s.spans, 0);
        assert_eq!(s.events, 0);
    }
}
