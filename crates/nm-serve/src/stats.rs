//! Serving observability: QPS counters and fixed-bucket latency
//! histograms, all lock-free atomics so the hot path never blocks.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Histogram bucket upper bounds in microseconds; the last bucket is
/// the +inf overflow. Roughly logarithmic from 10 µs to 1 s.
const BOUNDS_US: [u64; 15] = [
    10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 500_000,
    1_000_000,
];

/// Fixed-bucket latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            buckets: (0..BOUNDS_US.len() + 1)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let idx = BOUNDS_US.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Approximate `q`-quantile in microseconds: the upper bound of the
    /// bucket containing that quantile (overflow reports the largest
    /// bound). 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return BOUNDS_US
                    .get(i)
                    .copied()
                    .unwrap_or(BOUNDS_US[BOUNDS_US.len() - 1]);
            }
        }
        BOUNDS_US[BOUNDS_US.len() - 1]
    }
}

/// Counters shared by the retrieval engine and the TCP server.
#[derive(Debug)]
pub struct Stats {
    started: Instant,
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    /// Connections refused with an `overloaded` error (load shedding).
    pub shed: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Scoring passes executed (each may serve several requests).
    pub batches: AtomicU64,
    /// Requests that shared a scoring pass with at least one other.
    pub coalesced: AtomicU64,
    pub latency: LatencyHistogram,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

impl Stats {
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Completed-request throughput since start.
    pub fn qps(&self) -> f64 {
        let secs = self.uptime().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.latency.count() as f64 / secs
        }
    }

    /// Snapshot as a JSON object for the `stats` wire request.
    pub fn to_json(&self) -> Json {
        let g = |a: &AtomicU64| Json::Num(a.load(Ordering::Relaxed) as f64);
        Json::Obj(vec![
            ("uptime_secs".into(), Json::Num(self.uptime().as_secs_f64())),
            ("requests".into(), g(&self.requests)),
            ("errors".into(), g(&self.errors)),
            ("shed".into(), g(&self.shed)),
            ("cache_hits".into(), g(&self.cache_hits)),
            ("cache_misses".into(), g(&self.cache_misses)),
            ("batches".into(), g(&self.batches)),
            ("coalesced".into(), g(&self.coalesced)),
            ("qps".into(), Json::Num(self.qps())),
            (
                "latency_us".into(),
                Json::Obj(vec![
                    ("count".into(), Json::Num(self.latency.count() as f64)),
                    ("mean".into(), Json::Num(self.latency.mean_us() as f64)),
                    (
                        "p50".into(),
                        Json::Num(self.latency.quantile_us(0.50) as f64),
                    ),
                    (
                        "p95".into(),
                        Json::Num(self.latency.quantile_us(0.95) as f64),
                    ),
                    (
                        "p99".into(),
                        Json::Num(self.latency.quantile_us(0.99) as f64),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_land_in_expected_buckets() {
        let h = LatencyHistogram::new();
        // 90 fast (≤10us bucket), 10 slow (≤5ms bucket)
        for _ in 0..90 {
            h.record(Duration::from_micros(5));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(3_000));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.50), 10);
        assert_eq!(h.quantile_us(0.95), 5_000);
        assert_eq!(h.quantile_us(0.99), 5_000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0);
    }

    #[test]
    fn overflow_bucket_reports_largest_bound() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(10));
        assert_eq!(h.quantile_us(0.5), 1_000_000);
    }

    #[test]
    fn stats_json_has_percentiles() {
        let s = Stats::new();
        s.requests.fetch_add(3, Ordering::Relaxed);
        s.latency.record(Duration::from_micros(100));
        let j = s.to_json();
        assert_eq!(j.get("requests").unwrap().as_f64(), Some(3.0));
        let lat = j.get("latency_us").unwrap();
        assert!(lat.get("p99").unwrap().as_f64().unwrap() >= 100.0);
    }
}
