//! Serving observability, backed by the workspace-wide [`nm_obs`]
//! metrics registry: the serve counters and the latency histogram are
//! registered under `serve.*` names in one [`Registry`], so the `obs`
//! wire request, the training telemetry, and process-local snapshots
//! all share a single implementation and JSON format.

use crate::json::Json;
use nm_obs::{Counter, Histogram, HistogramSnapshot, Registry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Back-compat alias: the old `nm-serve` latency histogram is now the
/// shared [`nm_obs::Histogram`] (same buckets, plus overflow-aware
/// quantiles and a tracked max).
pub type LatencyHistogram = Histogram;

/// Counters shared by the retrieval engine and the TCP server.
///
/// Fields are `Arc` handles into the registry: update them lock-free
/// on the hot path, and read the whole set via [`Stats::obs_json`].
#[derive(Debug)]
pub struct Stats {
    started: Instant,
    registry: Registry,
    pub requests: Arc<Counter>,
    pub errors: Arc<Counter>,
    /// Connections refused with an `overloaded` error (load shedding).
    pub shed: Arc<Counter>,
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    /// Scoring passes executed (each may serve several requests).
    pub batches: Arc<Counter>,
    /// Requests that shared a scoring pass with at least one other.
    pub coalesced: Arc<Counter>,
    pub latency: Arc<Histogram>,
    // --- resilience (see DESIGN.md "Failure model & degraded modes") ---
    /// Scoring jobs that panicked (caught; the worker dies or the
    /// leader-inline drain absorbs it).
    pub worker_panics: Arc<Counter>,
    /// Supervisor restarts of dead scoring workers.
    pub worker_restarts: Arc<Counter>,
    /// Workers quarantined after exhausting their restart budget.
    pub worker_quarantined: Arc<Counter>,
    /// Accept-loop supervisor restarts.
    pub accept_restarts: Arc<Counter>,
    /// Shard attempts re-run after a failure (retry budget).
    pub shard_retried: Arc<Counter>,
    /// Shards that stayed failed after the retry budget was spent.
    pub shard_failures: Arc<Counter>,
    /// Circuit-breaker trips (closed→open and reopen-after-probe).
    pub breaker_opens: Arc<Counter>,
    /// Cooldown expiries admitting a half-open probe.
    pub breaker_half_opens: Arc<Counter>,
    /// Probes that succeeded and closed the breaker.
    pub breaker_closes: Arc<Counter>,
    /// Shard passes shed by an open breaker.
    pub breaker_short_circuits: Arc<Counter>,
    /// Answers covering only the surviving slice of the catalog.
    pub degraded_partial: Arc<Counter>,
    /// Answers served from the epoch-agnostic stale cache.
    pub degraded_stale: Arc<Counter>,
    /// Empty answers (no fallback was available).
    pub degraded_unavailable: Arc<Counter>,
    /// Requests shed because their deadline expired before an answer.
    pub deadline_shed: Arc<Counter>,
    /// Successful snapshot reloads.
    pub reload_ok: Arc<Counter>,
    /// Rejected reloads (validation or injected failure).
    pub reload_failed: Arc<Counter>,
    /// Connections closed after an idle/read timeout (structured error
    /// sent first).
    pub proto_timeouts: Arc<Counter>,
    /// Frames rejected for exceeding the frame-size limit.
    pub proto_oversized: Arc<Counter>,
    /// Frames cut mid-line (no trailing newline before EOF).
    pub proto_torn: Arc<Counter>,
    /// Frames rejected as invalid UTF-8 / unparseable before dispatch.
    pub proto_malformed: Arc<Counter>,
}

impl Default for Stats {
    fn default() -> Self {
        Self::new()
    }
}

impl Stats {
    pub fn new() -> Self {
        let registry = Registry::new();
        Self {
            started: Instant::now(),
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            shed: registry.counter("serve.shed"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            batches: registry.counter("serve.batches"),
            coalesced: registry.counter("serve.coalesced"),
            latency: registry.histogram("serve.latency_us", &nm_obs::LATENCY_BOUNDS_US),
            worker_panics: registry.counter("serve.worker.panics"),
            worker_restarts: registry.counter("serve.worker.restarts"),
            worker_quarantined: registry.counter("serve.worker.quarantined"),
            accept_restarts: registry.counter("serve.accept.restarts"),
            shard_retried: registry.counter("serve.shard.retried"),
            shard_failures: registry.counter("serve.shard.failures"),
            breaker_opens: registry.counter("serve.breaker.opens"),
            breaker_half_opens: registry.counter("serve.breaker.half_opens"),
            breaker_closes: registry.counter("serve.breaker.closes"),
            breaker_short_circuits: registry.counter("serve.breaker.short_circuits"),
            degraded_partial: registry.counter("serve.degraded.partial"),
            degraded_stale: registry.counter("serve.degraded.stale"),
            degraded_unavailable: registry.counter("serve.degraded.unavailable"),
            deadline_shed: registry.counter("serve.deadline.shed"),
            reload_ok: registry.counter("serve.reload.ok"),
            reload_failed: registry.counter("serve.reload.failed"),
            proto_timeouts: registry.counter("serve.proto.timeout"),
            proto_oversized: registry.counter("serve.proto.oversized"),
            proto_torn: registry.counter("serve.proto.torn"),
            proto_malformed: registry.counter("serve.proto.malformed"),
            registry,
        }
    }

    /// Total degraded answers across modes (conservation partner of the
    /// per-mode counters; asserted by the chaos harness).
    pub fn degraded_total(&self) -> u64 {
        self.degraded_partial.get() + self.degraded_stale.get() + self.degraded_unavailable.get()
    }

    /// The underlying registry (e.g. to register extra metrics).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Completed-request throughput since start.
    pub fn qps(&self) -> f64 {
        let secs = self.uptime().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.latency.count() as f64 / secs
        }
    }

    /// Fraction of cache lookups that hit (0.0 when no lookups yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.get() as f64;
        let total = hits + self.cache_misses.get() as f64;
        if total <= 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    fn latency_json(h: &HistogramSnapshot) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(h.count as f64)),
            ("mean".into(), Json::Num(h.mean as f64)),
            ("p50".into(), Json::Num(h.p50 as f64)),
            ("p95".into(), Json::Num(h.p95 as f64)),
            ("p99".into(), Json::Num(h.p99 as f64)),
            ("max".into(), Json::Num(h.max as f64)),
            ("overflow_count".into(), Json::Num(h.overflow_count as f64)),
        ])
    }

    /// Snapshot as a JSON object for the `stats` wire request (legacy
    /// flat shape, kept stable for existing consumers).
    pub fn to_json(&self) -> Json {
        let g = |c: &Counter| Json::Num(c.get() as f64);
        Json::Obj(vec![
            ("uptime_secs".into(), Json::Num(self.uptime().as_secs_f64())),
            ("requests".into(), g(&self.requests)),
            ("errors".into(), g(&self.errors)),
            ("shed".into(), g(&self.shed)),
            ("cache_hits".into(), g(&self.cache_hits)),
            ("cache_misses".into(), g(&self.cache_misses)),
            ("batches".into(), g(&self.batches)),
            ("coalesced".into(), g(&self.coalesced)),
            ("qps".into(), Json::Num(self.qps())),
            (
                "latency_us".into(),
                Self::latency_json(&self.latency.snapshot()),
            ),
        ])
    }

    /// Full unified registry snapshot for the `obs` wire request:
    /// every registered counter/gauge/histogram by name, plus derived
    /// rates the registry itself cannot know.
    pub fn obs_json(&self) -> Json {
        let snap = self.registry.snapshot();
        let counters = Json::Obj(
            snap.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let gauges = Json::Obj(
            snap.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            snap.histograms
                .iter()
                .map(|(k, h)| (k.clone(), Self::latency_json(h)))
                .collect(),
        );
        Json::Obj(vec![
            ("uptime_secs".into(), Json::Num(self.uptime().as_secs_f64())),
            ("qps".into(), Json::Num(self.qps())),
            ("cache_hit_rate".into(), Json::Num(self.cache_hit_rate())),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_land_in_expected_buckets() {
        let h = LatencyHistogram::latency();
        // 90 fast (≤10us bucket), 10 slow (≤5ms bucket)
        for _ in 0..90 {
            h.record_duration(Duration::from_micros(5));
        }
        for _ in 0..10 {
            h.record_duration(Duration::from_micros(3_000));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 10);
        assert_eq!(h.quantile(0.95), 5_000);
        assert_eq!(h.quantile(0.99), 5_000);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let h = LatencyHistogram::latency();
        h.record_duration(Duration::from_secs(10));
        // pre-fix this clamped to the last bound (1s), underreporting
        // tail latency by 10x
        assert_eq!(h.quantile(0.5), 10_000_000);
        assert_eq!(h.overflow_count(), 1);
    }

    #[test]
    fn stats_json_has_percentiles_and_overflow() {
        let s = Stats::new();
        s.requests.add(3);
        s.latency.record_duration(Duration::from_micros(100));
        let j = s.to_json();
        assert_eq!(j.get("requests").unwrap().as_f64(), Some(3.0));
        let lat = j.get("latency_us").unwrap();
        assert!(lat.get("p99").unwrap().as_f64().unwrap() >= 100.0);
        assert_eq!(lat.get("overflow_count").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn obs_json_exposes_unified_registry() {
        let s = Stats::new();
        s.cache_hits.add(3);
        s.cache_misses.inc();
        s.latency.record_duration(Duration::from_micros(50));
        let j = s.obs_json();
        let counters = j.get("counters").unwrap();
        assert_eq!(
            counters.get("serve.cache.hits").unwrap().as_f64(),
            Some(3.0)
        );
        assert_eq!(counters.get("serve.shed").unwrap().as_f64(), Some(0.0));
        assert_eq!(j.get("cache_hit_rate").unwrap().as_f64(), Some(0.75));
        let hist = j
            .get("histograms")
            .unwrap()
            .get("serve.latency_us")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(1.0));
        // extra metrics registered through the same registry show up
        s.registry().counter("serve.custom").add(7);
        let j2 = s.obs_json();
        assert_eq!(
            j2.get("counters")
                .unwrap()
                .get("serve.custom")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
    }
}
