//! TCP front end: newline-delimited JSON over `std::net`.
//!
//! A supervised accept loop hands each connection to a handler thread;
//! a connection-slot semaphore bounds concurrency, and each request
//! gets a deadline that propagates into the engine — a slow or broken
//! pass degrades to a structured reply instead of wedging the client.
//!
//! Framing is defensive: oversized frames, torn frames (EOF mid-line),
//! idle timeouts, and non-UTF-8 bytes all get a structured protocol
//! error (with a machine-readable `code`) and a counter bump — never a
//! silent drop.

use crate::chaos::Deadline;
use crate::engine::Engine;
use crate::protocol::{self, Request};
use crate::reqtrace::DegradedKind;
use crate::snapshot::Snapshot;
use crate::sync::lock;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Max concurrently served connections; excess block in accept.
    pub max_conns: usize,
    /// Per-request deadline, propagated into the engine; past it the
    /// request degrades (stale cache or empty) instead of waiting.
    pub deadline: Duration,
    /// Read timeout on idle client connections.
    pub idle_timeout: Duration,
    /// Largest accepted request frame (bytes, excluding the newline);
    /// longer frames get an `oversized` error and the connection closes.
    pub max_frame_bytes: usize,
    /// Deterministic telemetry tick source: when non-zero, every
    /// `sample_every`-th completed request records a flight-recorder
    /// tick. Keyed to the request ordinal, not wall clock, so a seeded
    /// workload produces a byte-identical recorded series.
    pub sample_every: u64,
    /// Production telemetry tick source: when set, a sampler thread
    /// records a tick every interval on the monotonic clock. Intended
    /// for long-lived `nmcdr serve` processes; tests and chaos drills
    /// use `sample_every` instead so series stay deterministic.
    pub sample_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_conns: 64,
            deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
            max_frame_bytes: 64 * 1024,
            sample_every: 0,
            sample_interval: None,
        }
    }
}

/// Accept-loop restarts allowed before giving up (the loop is not
/// expected to panic; the budget is a backstop, mirroring the worker
/// supervisor).
const ACCEPT_RESTART_BUDGET: u32 = 5;

/// Counting semaphore for connection slots (also used to drain on
/// stop). The check-and-claim core is [`nm_sync::ConnGate`]: the
/// accept loop sheds load when `try_acquire` returns false instead of
/// blocking, so a burst of connections cannot wedge accepts for
/// well-behaved clients. `nmcdr check` model-checks this same gate
/// code under its virtual backend.
type ConnSlots = nm_sync::ConnGate<nm_sync::StdBackend>;

struct Shared {
    engine: Arc<Engine>,
    cfg: ServerConfig,
    stopping: AtomicBool,
    slots: ConnSlots,
    addr: Mutex<Option<SocketAddr>>,
    /// Connection ordinal, used as a chaos draw coordinate so injected
    /// wire faults are keyed to (connection, request), not wall clock.
    conn_seq: AtomicU64,
    /// Completed-request ordinal across all connections: the logical
    /// tick source when `sample_every` is set.
    req_ordinal: AtomicU64,
    /// Live connections, so stop() can unblock handlers parked in
    /// read instead of draining at the mercy of the idle timeout.
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl Shared {
    fn drop_conn(&self, id: u64) {
        lock(&self.conns).retain(|(cid, _)| *cid != id);
    }
}

/// A running server. Dropping it (or calling [`Server::stop`]) shuts
/// the listener down and drains in-flight connections.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
    sampler_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop.
    pub fn start(engine: Arc<Engine>, bind: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            slots: ConnSlots::new(cfg.max_conns),
            cfg,
            stopping: AtomicBool::new(false),
            addr: Mutex::new(Some(addr)),
            conn_seq: AtomicU64::new(0),
            req_ordinal: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("nm-serve-accept".into())
            .spawn(move || supervised_accept(listener, accept_shared))?;
        let sampler_thread = match shared.cfg.sample_interval {
            Some(interval) if !interval.is_zero() => {
                let sampler_shared = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name("nm-serve-sampler".into())
                        .spawn(move || sampler_loop(sampler_shared, interval))?,
                )
            }
            _ => None,
        };
        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            sampler_thread,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a `shutdown` request has been received.
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::Acquire)
    }

    /// Blocks until the accept loop exits (after a `shutdown` request
    /// or [`Server::stop`]).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.slots.wait_idle();
        // By here the accept loop has exited, which only happens with
        // the stop flag set — the sampler observes it and exits too.
        self.shared.stopping.store(true, Ordering::Release);
        if let Some(t) = self.sampler_thread.take() {
            let _ = t.join();
        }
    }

    /// Initiates shutdown and drains: stops accepting, wakes the accept
    /// loop with a loopback connection, and waits for in-flight
    /// connections to finish.
    pub fn stop(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        // The accept loop blocks in accept(); poke it so it re-checks
        // the flag. Error is fine — it may have already exited.
        let _ = TcpStream::connect(self.addr);
        // Unblock handlers parked in read on open client connections;
        // without this, drain waits out the idle timeout per handler.
        for (_, s) in lock(&self.shared.conns).iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        self.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Supervises [`accept_loop`]: a panic there (never expected, but the
/// one thread whose death would silently stop all service) restarts
/// the loop on a clone of the listener, with seeded backoff, up to
/// [`ACCEPT_RESTART_BUDGET`] times.
fn supervised_accept(listener: TcpListener, shared: Arc<Shared>) {
    let mut restarts: u32 = 0;
    loop {
        let incarnation = match listener.try_clone() {
            Ok(l) => l,
            Err(_) => break,
        };
        let loop_shared = Arc::clone(&shared);
        let exit = catch_unwind(AssertUnwindSafe(|| accept_loop(incarnation, loop_shared)));
        if exit.is_ok() || shared.stopping.load(Ordering::Acquire) {
            // accept_loop only returns on stop; a panic after the stop
            // flag is set is also a clean exit.
            break;
        }
        if restarts >= ACCEPT_RESTART_BUDGET {
            nm_obs::trace::event("serve.quarantine", |e| {
                e.s("child", "accept").u("restarts", restarts as u64);
            });
            break;
        }
        restarts += 1;
        shared.engine.stats().accept_restarts.inc();
        nm_obs::trace::event("serve.restart", |e| {
            e.s("child", "accept").u("attempt", restarts as u64);
        });
        thread::sleep(crate::chaos::seeded_backoff(
            Duration::from_millis(1),
            Duration::from_millis(50),
            restarts,
            0,
            0xACCE97,
        ));
    }
}

/// Production tick source: records a flight-recorder tick every
/// `interval`, sleeping in short chunks so stop() is observed promptly.
fn sampler_loop(shared: Arc<Shared>, interval: Duration) {
    let chunk = Duration::from_millis(50).min(interval);
    let mut elapsed = Duration::ZERO;
    while !shared.stopping.load(Ordering::Acquire) {
        thread::sleep(chunk);
        elapsed += chunk;
        if elapsed >= interval {
            elapsed = Duration::ZERO;
            shared.engine.tick_telemetry();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        if !shared.slots.try_acquire() {
            // Saturated: shed this connection with a structured error
            // rather than stalling the accept loop behind a slot.
            let stats = shared.engine.stats();
            stats.shed.inc();
            stats.errors.inc();
            let mut s = stream;
            let msg = protocol::encode_error(&format!(
                "overloaded: {} connections already active, retry later",
                shared.cfg.max_conns
            ));
            let _ = s.write_all(msg.as_bytes()).and_then(|_| s.write_all(b"\n"));
            continue;
        }
        if shared.stopping.load(Ordering::Acquire) {
            shared.slots.release();
            break;
        }
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).push((conn_id, clone));
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("nm-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &conn_shared, conn_id);
                conn_shared.drop_conn(conn_id);
                conn_shared.slots.release();
            });
        if spawned.is_err() {
            shared.drop_conn(conn_id);
            shared.slots.release();
        }
    }
}

/// Writes one newline-terminated reply, best-effort (the peer may
/// already be gone when we report a protocol error).
fn send_line(writer: &mut TcpStream, msg: &str) {
    let _ = writer
        .write_all(msg.as_bytes())
        .and_then(|_| writer.write_all(b"\n"))
        .and_then(|_| writer.flush());
}

fn handle_connection(stream: TcpStream, shared: &Shared, conn: u64) -> std::io::Result<()> {
    stream.set_read_timeout(Some(shared.cfg.idle_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let stats = shared.engine.stats();
    let mut req_no: u64 = 0;
    let max = shared.cfg.max_frame_bytes.max(1);
    loop {
        // Manual framing instead of `lines()`: a bounded read that can
        // tell apart clean EOF, torn frames, oversized frames, idle
        // timeouts, and bad UTF-8 — each gets a structured error.
        let mut buf: Vec<u8> = Vec::new();
        let n = match (&mut reader)
            .take(max as u64 + 1)
            .read_until(b'\n', &mut buf)
        {
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                stats.errors.inc();
                stats.proto_timeouts.inc();
                send_line(
                    &mut writer,
                    &protocol::encode_proto_error(
                        "timeout",
                        "idle timeout: no complete frame arrived in time; closing",
                    ),
                );
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(()); // clean EOF between frames
        }
        if buf.last() != Some(&b'\n') {
            // No newline: either the frame outgrew the limit (the
            // `take` cap fired) or the peer hung up mid-frame.
            stats.errors.inc();
            let msg = if n > max {
                stats.proto_oversized.inc();
                protocol::encode_proto_error(
                    "oversized",
                    &format!("frame exceeds {max} bytes; closing"),
                )
            } else {
                stats.proto_torn.inc();
                protocol::encode_proto_error("torn", "connection closed mid-frame")
            };
            send_line(&mut writer, &msg);
            return Ok(());
        }
        let line = match String::from_utf8(buf) {
            Ok(s) => s,
            Err(_) => {
                stats.requests.inc();
                stats.errors.inc();
                stats.proto_malformed.inc();
                send_line(
                    &mut writer,
                    &protocol::encode_proto_error("malformed", "frame is not valid UTF-8"),
                );
                continue; // framing is intact; keep the connection
            }
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        req_no += 1;
        // Chaos: a torn read truncates the frame before parsing, so the
        // parser must absorb an arbitrary prefix of a valid request.
        let torn_line;
        let effective = match shared.engine.chaos() {
            Some(chaos) if chaos.torn_read(conn, req_no) => {
                let mut cut = line.len() / 2;
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                torn_line = &line[..cut];
                torn_line
            }
            _ => line,
        };
        let started = Instant::now();
        let (response, shutdown) = dispatch(effective, shared, started, conn, req_no);
        stats.latency.record_duration(started.elapsed());
        // Deterministic tick source: the global completed-request
        // ordinal (not per-connection req_no) drives sampling, so a
        // seeded workload replays to the same recorded series no
        // matter how requests spread over connections.
        if shared.cfg.sample_every > 0 {
            let done = shared.req_ordinal.fetch_add(1, Ordering::Relaxed) + 1;
            if done.is_multiple_of(shared.cfg.sample_every) {
                shared.engine.tick_telemetry();
            }
        }
        // Chaos: a torn write cuts the reply mid-frame and closes, so
        // clients must survive half a response.
        if let Some(chaos) = shared.engine.chaos() {
            if chaos.torn_write(conn, req_no) {
                stats.proto_torn.inc();
                let bytes = response.as_bytes();
                let _ = writer
                    .write_all(&bytes[..bytes.len() / 2])
                    .and_then(|_| writer.flush());
                return Ok(());
            }
        }
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown || shared.stopping.load(Ordering::Acquire) {
            // Wake the accept loop (it blocks in accept()) so it
            // observes the stop flag and exits.
            if let Some(addr) = *lock(&shared.addr) {
                let _ = TcpStream::connect(addr);
            }
            break;
        }
    }
    Ok(())
}

/// Handles one request line; returns `(response, shutdown_requested)`.
/// `conn`/`req_no` key the chaos draws for deterministic fault replay.
fn dispatch(
    line: &str,
    shared: &Shared,
    started: Instant,
    conn: u64,
    req_no: u64,
) -> (String, bool) {
    let stats = shared.engine.stats();
    let req_sw = nm_obs::clock::Stopwatch::start();
    let _root = nm_obs::trace::span("serve.request");
    let parse_sw = nm_obs::clock::Stopwatch::start();
    let parsed = {
        let _s = nm_obs::trace::span("serve.parse");
        protocol::parse_request(line)
    };
    let parse_us = parse_sw.elapsed_us();
    let req = match parsed {
        Ok(r) => r,
        Err(e) => {
            stats.requests.inc();
            stats.errors.inc();
            stats.proto_malformed.inc();
            return (protocol::encode_proto_error("malformed", &e), false);
        }
    };
    let response = match req {
        Request::TopK { user, domain, k } => {
            // engine.topk_deadline counts the request on the happy path
            if user >= shared.engine.snapshot().n_users(domain) as u32 {
                stats.requests.inc();
                stats.errors.inc();
                protocol::encode_error(&format!("unknown user {user}"))
            } else {
                let ring = shared.engine.exemplars();
                let rid = ring.next_id();
                let mut deadline = Deadline::after(shared.cfg.deadline);
                if let Some(chaos) = shared.engine.chaos() {
                    if chaos.deadline_expire(conn, req_no) {
                        deadline = deadline.forced_expired();
                    }
                }
                let (list, rt) = shared.engine.topk_deadline(domain, user, k, deadline);
                let ser_sw = nm_obs::clock::Stopwatch::start();
                let resp = {
                    let _s = nm_obs::trace::span("serve.serialize");
                    if rt.degraded != DegradedKind::None {
                        protocol::encode_topk_degraded(user, domain, rt.degraded.as_str(), &list)
                    } else if started.elapsed() > shared.cfg.deadline {
                        // Full answer, but the wire-level budget passed
                        // while serializing: still usable, flagged.
                        protocol::encode_topk_degraded(user, domain, "deadline", &list)
                    } else {
                        protocol::encode_topk_response(user, domain, rt.cache_hit, &list)
                    }
                };
                // Deadline-missed requests are the exemplars most worth
                // keeping, so capture happens regardless of the outcome.
                ring.record(crate::reqtrace::Exemplar {
                    id: rid,
                    domain,
                    user,
                    k,
                    start_us: req_sw.start_us(),
                    total_us: req_sw.elapsed_us(),
                    stages: crate::reqtrace::StageUs {
                        parse: parse_us,
                        cache: rt.cache_us,
                        // exclusive wait: the shared pass's fan-out and
                        // merge time is reported in its own stages
                        coalesce: rt.coalesce_us.saturating_sub(rt.fanout_us + rt.merge_us),
                        fanout: rt.fanout_us,
                        merge: rt.merge_us,
                        serialize: ser_sw.elapsed_us(),
                    },
                    queue_depth: rt.queue_depth,
                    lock_us: rt.lock_us,
                    cache_hit: rt.cache_hit,
                    coalesced: rt.coalesced,
                    shed_seen: stats.shed.get(),
                });
                resp
            }
        }
        Request::Score {
            user,
            domain,
            items,
        } => {
            stats.requests.inc();
            let snap = shared.engine.snapshot();
            let n_items = snap.n_items(domain) as u32;
            if user >= snap.n_users(domain) as u32 {
                stats.errors.inc();
                protocol::encode_error(&format!("unknown user {user}"))
            } else if let Some(bad) = items.iter().find(|&&i| i >= n_items) {
                stats.errors.inc();
                protocol::encode_error(&format!("unknown item {bad}"))
            } else {
                let users = vec![user; items.len()];
                let scores = snap.score_pairs(domain, &users, &items);
                protocol::encode_scores_response(user, domain, &scores)
            }
        }
        Request::Stats => {
            stats.requests.inc();
            protocol::encode_ok(vec![("stats".into(), stats.to_json())])
        }
        Request::Obs => {
            stats.requests.inc();
            protocol::encode_ok(vec![("obs".into(), stats.obs_json())])
        }
        Request::Series { window } => {
            stats.requests.inc();
            let telemetry = shared.engine.telemetry();
            protocol::encode_ok(vec![(
                "series".into(),
                telemetry.series_json(window.unwrap_or(usize::MAX)),
            )])
        }
        Request::Trace { n } => {
            stats.requests.inc();
            let mut exemplars = shared.engine.exemplars().slowest();
            if let Some(n) = n {
                exemplars.truncate(n);
            }
            let text = crate::reqtrace::render_trace(&exemplars);
            protocol::encode_ok(vec![
                (
                    "exemplars".into(),
                    crate::json::Json::Num(exemplars.len() as f64),
                ),
                ("trace".into(), crate::json::Json::Str(text)),
            ])
        }
        Request::Reload { path } => {
            stats.requests.inc();
            match Snapshot::load_from_file(std::path::Path::new(&path))
                .and_then(|snap| shared.engine.reload(snap))
            {
                Ok(()) => protocol::encode_ok(vec![(
                    "epoch".into(),
                    crate::json::Json::Num(shared.engine.epoch() as f64),
                )]),
                Err(e) => {
                    stats.errors.inc();
                    protocol::encode_error(&format!("reload failed: {e}"))
                }
            }
        }
        Request::Shutdown => {
            stats.requests.inc();
            shared.stopping.store(true, Ordering::Release);
            return (protocol::encode_ok(vec![]), true);
        }
    };
    (response, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::json::Json;
    use crate::snapshot::{DomainSnapshot, HeadKind};
    use nm_tensor::{Tensor, TensorRng};

    fn test_server() -> Server {
        let mut rng = TensorRng::seed_from(11);
        let mk = |rng: &mut TensorRng| DomainSnapshot {
            users: Tensor::randn(8, 4, 1.0, rng),
            items: Tensor::randn(40, 4, 1.0, rng),
            head: HeadKind::Dot,
        };
        let snap = Snapshot {
            model: "test".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        };
        let engine = Arc::new(
            Engine::new(
                snap,
                EngineConfig {
                    n_workers: 2,
                    ..Default::default()
                },
            )
            .expect("valid test snapshot"),
        );
        Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut out = Vec::new();
        for l in lines {
            writer.write_all(l.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            out.push(Json::parse(resp.trim()).unwrap());
        }
        out
    }

    #[test]
    fn serves_topk_stats_and_errors_over_tcp() {
        let mut server = test_server();
        let addr = server.local_addr();
        let resps = roundtrip(
            addr,
            &[
                r#"{"op":"topk","user":3,"domain":"a","k":5}"#,
                r#"{"op":"topk","user":3,"domain":"a","k":5}"#,
                r#"{"op":"score","user":3,"domain":"a","items":[0,1,2]}"#,
                r#"{"op":"topk","user":999,"domain":"a","k":5}"#,
                "this is not json",
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(resps[0].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(resps[0].get("items").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(resps[0].get("cached").unwrap().as_bool(), Some(false));
        // identical query: served from cache, same items
        assert_eq!(resps[1].get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            resps[0].get("items").unwrap(),
            resps[1].get("items").unwrap()
        );
        assert_eq!(resps[2].get("scores").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(resps[3].get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(resps[4].get("ok").unwrap().as_bool(), Some(false));
        let stats = resps[5].get("stats").unwrap();
        assert!(stats.get("requests").unwrap().as_f64().unwrap() >= 5.0);
        server.stop();
    }

    #[test]
    fn saturated_server_sheds_with_overloaded_error() {
        let mut rng = TensorRng::seed_from(5);
        let mk = |rng: &mut TensorRng| DomainSnapshot {
            users: Tensor::randn(8, 4, 1.0, rng),
            items: Tensor::randn(40, 4, 1.0, rng),
            head: HeadKind::Dot,
        };
        let snap = Snapshot {
            model: "test".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        };
        let engine = Arc::new(
            Engine::new(
                snap,
                EngineConfig {
                    n_workers: 1,
                    ..Default::default()
                },
            )
            .expect("valid test snapshot"),
        );
        let mut server = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                max_conns: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // First connection holds the only slot (handler parks in read).
        let holder = TcpStream::connect(addr).unwrap();
        // Wait until the slot is actually claimed, then a second
        // connection must be shed with a structured error, not block.
        let mut shed_resp = None;
        for _ in 0..200 {
            let extra = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(extra);
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) > 0 {
                shed_resp = Some(Json::parse(line.trim()).unwrap());
                break;
            }
            // raced ahead of the holder's accept; retry
            thread::sleep(Duration::from_millis(5));
        }
        let resp = shed_resp.expect("no shed response observed");
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        let err = resp.get("error").unwrap().as_str().unwrap().to_string();
        assert!(err.contains("overloaded"), "unexpected error: {err}");
        assert!(engine.stats().shed.get() >= 1);

        // Releasing the holder frees the slot and service resumes.
        drop(holder);
        let mut served = false;
        for _ in 0..200 {
            let resps = roundtrip(addr, &[r#"{"op":"topk","user":1,"domain":"a","k":3}"#]);
            if resps[0].get("ok").unwrap().as_bool() == Some(true) {
                served = true;
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert!(served, "server never recovered after shedding");
        server.stop();
    }

    #[test]
    fn trace_op_returns_validating_exemplar_trace() {
        let mut server = test_server();
        let addr = server.local_addr();
        let resps = roundtrip(
            addr,
            &[
                r#"{"op":"topk","user":3,"domain":"a","k":5}"#,
                r#"{"op":"topk","user":4,"domain":"b","k":7}"#,
                r#"{"op":"topk","user":3,"domain":"a","k":5}"#,
                r#"{"op":"trace"}"#,
                r#"{"op":"trace","n":1}"#,
            ],
        );
        assert_eq!(resps[3].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(resps[3].get("exemplars").unwrap().as_u64(), Some(3));
        let text = resps[3].get("trace").unwrap().as_str().unwrap();
        let recs = nm_obs::parse::parse_trace(text).expect("embedded trace parses strictly");
        let s = nm_obs::report::validate(&recs).expect("embedded trace validates");
        assert_eq!(s.events, 3, "one serve.exemplar event per request");
        assert!(s.spans >= 3, "at least one serve.request root per request");
        // `n` bounds the exemplar count
        assert_eq!(resps[4].get("exemplars").unwrap().as_u64(), Some(1));
        server.stop();
    }

    #[test]
    fn hostile_frames_get_structured_errors_not_silence() {
        use std::net::Shutdown;
        let mut rng = TensorRng::seed_from(17);
        let mk = |rng: &mut TensorRng| DomainSnapshot {
            users: Tensor::randn(8, 4, 1.0, rng),
            items: Tensor::randn(40, 4, 1.0, rng),
            head: HeadKind::Dot,
        };
        let snap = Snapshot {
            model: "test".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        };
        let engine = Arc::new(
            Engine::new(
                snap,
                EngineConfig {
                    n_workers: 2,
                    ..Default::default()
                },
            )
            .expect("valid test snapshot"),
        );
        let mut server = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                max_frame_bytes: 128,
                idle_timeout: Duration::from_millis(150),
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let stats = engine.stats();
        let read_json = |stream: TcpStream| -> Json {
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            Json::parse(line.trim()).unwrap()
        };

        // Oversized: a frame past max_frame_bytes with no newline.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&[b'a'; 200]).unwrap();
        s.flush().unwrap();
        let resp = read_json(s);
        assert_eq!(resp.get("code").unwrap().as_str(), Some("oversized"));
        assert_eq!(stats.proto_oversized.get(), 1);

        // Malformed UTF-8: rejected, but the connection survives and
        // serves the next (valid) frame.
        let s = TcpStream::connect(addr).unwrap();
        let mut w = s.try_clone().unwrap();
        let mut reader = BufReader::new(s);
        w.write_all(&[0xff, 0xfe, 0xfd, b'\n']).unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("code").unwrap().as_str(), Some("malformed"));
        w.write_all(b"{\"op\":\"topk\",\"user\":1,\"domain\":\"a\",\"k\":3}\n")
            .unwrap();
        w.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
        assert!(stats.proto_malformed.get() >= 1);
        // close this connection cleanly so it cannot idle-time-out
        // while the later steps wait
        drop(w);
        drop(reader);

        // Torn frame: client hangs up mid-line (write side closed, read
        // side still open to observe the error).
        let s = TcpStream::connect(addr).unwrap();
        let mut w = s.try_clone().unwrap();
        w.write_all(b"{\"op\":\"topk\"").unwrap();
        w.flush().unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let resp = read_json(s);
        assert_eq!(resp.get("code").unwrap().as_str(), Some("torn"));
        assert_eq!(stats.proto_torn.get(), 1);

        // Idle timeout: a silent connection gets a timeout error before
        // the server closes it.
        let s = TcpStream::connect(addr).unwrap();
        let resp = read_json(s);
        assert_eq!(resp.get("code").unwrap().as_str(), Some("timeout"));
        assert_eq!(stats.proto_timeouts.get(), 1);

        // Unparseable JSON also counts as malformed (satellite: the
        // old path returned a code-less error and no counter).
        let before = stats.proto_malformed.get();
        let resps = roundtrip(addr, &["this is not json"]);
        assert_eq!(resps[0].get("code").unwrap().as_str(), Some("malformed"));
        assert_eq!(stats.proto_malformed.get(), before + 1);
        server.stop();
    }

    #[test]
    fn sample_every_ticks_recorder_and_series_op_reports_them() {
        let mut rng = TensorRng::seed_from(23);
        let mk = |rng: &mut TensorRng| DomainSnapshot {
            users: Tensor::randn(8, 4, 1.0, rng),
            items: Tensor::randn(40, 4, 1.0, rng),
            head: HeadKind::Dot,
        };
        let snap = Snapshot {
            model: "test".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        };
        let engine = Arc::new(
            Engine::new(
                snap,
                EngineConfig {
                    n_workers: 2,
                    ..Default::default()
                },
            )
            .expect("valid test snapshot"),
        );
        let mut server = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                sample_every: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let resps = roundtrip(
            addr,
            &[
                r#"{"op":"topk","user":1,"domain":"a","k":3}"#,
                r#"{"op":"topk","user":2,"domain":"a","k":3}"#,
                r#"{"op":"topk","user":3,"domain":"b","k":3}"#,
                r#"{"op":"topk","user":4,"domain":"b","k":3}"#,
                r#"{"op":"series","window":10}"#,
            ],
        );
        // 4 completed requests at sample_every=2 → ticks 0 and 1; the
        // series request itself ticks only after its reply is built.
        let series = resps[4].get("series").unwrap();
        assert_eq!(series.get("ticks").unwrap().as_u64(), Some(2));
        assert_eq!(series.get("first_tick").unwrap().as_u64(), Some(0));
        assert_eq!(series.get("last_tick").unwrap().as_u64(), Some(1));
        let counters = series.get("counters").unwrap();
        assert_eq!(
            counters.get("serve.requests").and_then(|j| j.as_u64()),
            Some(4),
            "window conserves the request count across ticks"
        );
        assert!(engine.telemetry().recorder().ticks().len() >= 2);
        server.stop();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let mut server = test_server();
        let addr = server.local_addr();
        let resps = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        assert_eq!(resps[0].get("ok").unwrap().as_bool(), Some(true));
        server.wait();
        assert!(server.is_stopping());
    }
}
