//! TCP front end: newline-delimited JSON over `std::net`.
//!
//! An accept loop hands each connection to a handler thread; a
//! connection-slot semaphore bounds concurrency, and each request gets
//! a soft deadline — answers computed past it are replaced by an error
//! so a slow pass cannot wedge clients that already gave up.

use crate::engine::Engine;
use crate::protocol::{self, Request};
use crate::snapshot::Snapshot;
use crate::sync::{lock, wait};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Max concurrently served connections; excess block in accept.
    pub max_conns: usize,
    /// Soft per-request deadline.
    pub deadline: Duration,
    /// Read timeout on idle client connections.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_conns: 64,
            deadline: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Counting semaphore for connection slots (also used to drain on stop).
struct ConnSlots {
    active: Mutex<usize>,
    changed: Condvar,
    max: usize,
}

impl ConnSlots {
    /// Claims a slot if one is free; returns false when saturated. The
    /// accept loop sheds load on false instead of blocking, so a burst
    /// of connections cannot wedge accepts for well-behaved clients.
    fn try_acquire(&self) -> bool {
        let mut n = lock(&self.active);
        if *n >= self.max {
            return false;
        }
        *n += 1;
        true
    }

    fn release(&self) {
        *lock(&self.active) -= 1;
        self.changed.notify_all();
    }

    fn wait_idle(&self) {
        let mut n = lock(&self.active);
        while *n > 0 {
            n = wait(&self.changed, n);
        }
    }
}

struct Shared {
    engine: Arc<Engine>,
    cfg: ServerConfig,
    stopping: AtomicBool,
    slots: ConnSlots,
    addr: Mutex<Option<SocketAddr>>,
}

/// A running server. Dropping it (or calling [`Server::stop`]) shuts
/// the listener down and drains in-flight connections.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop.
    pub fn start(engine: Arc<Engine>, bind: &str, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            slots: ConnSlots {
                active: Mutex::new(0),
                changed: Condvar::new(),
                max: cfg.max_conns.max(1),
            },
            cfg,
            stopping: AtomicBool::new(false),
            addr: Mutex::new(Some(addr)),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("nm-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a `shutdown` request has been received.
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::Acquire)
    }

    /// Blocks until the accept loop exits (after a `shutdown` request
    /// or [`Server::stop`]).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.slots.wait_idle();
    }

    /// Initiates shutdown and drains: stops accepting, wakes the accept
    /// loop with a loopback connection, and waits for in-flight
    /// connections to finish.
    pub fn stop(&mut self) {
        self.shared.stopping.store(true, Ordering::Release);
        // The accept loop blocks in accept(); poke it so it re-checks
        // the flag. Error is fine — it may have already exited.
        let _ = TcpStream::connect(self.addr);
        self.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        if !shared.slots.try_acquire() {
            // Saturated: shed this connection with a structured error
            // rather than stalling the accept loop behind a slot.
            let stats = shared.engine.stats();
            stats.shed.inc();
            stats.errors.inc();
            let mut s = stream;
            let msg = protocol::encode_error(&format!(
                "overloaded: {} connections already active, retry later",
                shared.cfg.max_conns
            ));
            let _ = s.write_all(msg.as_bytes()).and_then(|_| s.write_all(b"\n"));
            continue;
        }
        if shared.stopping.load(Ordering::Acquire) {
            shared.slots.release();
            break;
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("nm-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &conn_shared);
                conn_shared.slots.release();
            });
        if spawned.is_err() {
            shared.slots.release();
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(shared.cfg.idle_timeout))?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (response, shutdown) = dispatch(&line, shared, started);
        shared
            .engine
            .stats()
            .latency
            .record_duration(started.elapsed());
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown || shared.stopping.load(Ordering::Acquire) {
            // Wake the accept loop (it blocks in accept()) so it
            // observes the stop flag and exits.
            if let Some(addr) = *lock(&shared.addr) {
                let _ = TcpStream::connect(addr);
            }
            break;
        }
    }
    Ok(())
}

/// Handles one request line; returns `(response, shutdown_requested)`.
fn dispatch(line: &str, shared: &Shared, started: Instant) -> (String, bool) {
    let stats = shared.engine.stats();
    let req_sw = nm_obs::clock::Stopwatch::start();
    let _root = nm_obs::trace::span("serve.request");
    let parse_sw = nm_obs::clock::Stopwatch::start();
    let parsed = {
        let _s = nm_obs::trace::span("serve.parse");
        protocol::parse_request(line)
    };
    let parse_us = parse_sw.elapsed_us();
    let req = match parsed {
        Ok(r) => r,
        Err(e) => {
            stats.requests.inc();
            stats.errors.inc();
            return (protocol::encode_error(&e), false);
        }
    };
    let response = match req {
        Request::TopK { user, domain, k } => {
            // engine.topk_traced counts the request on the happy path
            if user >= shared.engine.snapshot().n_users(domain) as u32 {
                stats.requests.inc();
                stats.errors.inc();
                protocol::encode_error(&format!("unknown user {user}"))
            } else {
                let ring = shared.engine.exemplars();
                let rid = ring.next_id();
                let (list, rt) = shared.engine.topk_traced(domain, user, k);
                let deadline_missed = started.elapsed() > shared.cfg.deadline;
                let ser_sw = nm_obs::clock::Stopwatch::start();
                let resp = if deadline_missed {
                    stats.errors.inc();
                    protocol::encode_error("deadline exceeded")
                } else {
                    let _s = nm_obs::trace::span("serve.serialize");
                    protocol::encode_topk_response(user, domain, rt.cache_hit, &list)
                };
                // Deadline-missed requests are the exemplars most worth
                // keeping, so capture happens regardless of the outcome.
                ring.record(crate::reqtrace::Exemplar {
                    id: rid,
                    domain,
                    user,
                    k,
                    start_us: req_sw.start_us(),
                    total_us: req_sw.elapsed_us(),
                    stages: crate::reqtrace::StageUs {
                        parse: parse_us,
                        cache: rt.cache_us,
                        // exclusive wait: the shared pass's fan-out and
                        // merge time is reported in its own stages
                        coalesce: rt.coalesce_us.saturating_sub(rt.fanout_us + rt.merge_us),
                        fanout: rt.fanout_us,
                        merge: rt.merge_us,
                        serialize: ser_sw.elapsed_us(),
                    },
                    queue_depth: rt.queue_depth,
                    lock_us: rt.lock_us,
                    cache_hit: rt.cache_hit,
                    coalesced: rt.coalesced,
                    shed_seen: stats.shed.get(),
                });
                resp
            }
        }
        Request::Score {
            user,
            domain,
            items,
        } => {
            stats.requests.inc();
            let snap = shared.engine.snapshot();
            let n_items = snap.n_items(domain) as u32;
            if user >= snap.n_users(domain) as u32 {
                stats.errors.inc();
                protocol::encode_error(&format!("unknown user {user}"))
            } else if let Some(bad) = items.iter().find(|&&i| i >= n_items) {
                stats.errors.inc();
                protocol::encode_error(&format!("unknown item {bad}"))
            } else {
                let users = vec![user; items.len()];
                let scores = snap.score_pairs(domain, &users, &items);
                protocol::encode_scores_response(user, domain, &scores)
            }
        }
        Request::Stats => {
            stats.requests.inc();
            protocol::encode_ok(vec![("stats".into(), stats.to_json())])
        }
        Request::Obs => {
            stats.requests.inc();
            protocol::encode_ok(vec![("obs".into(), stats.obs_json())])
        }
        Request::Trace { n } => {
            stats.requests.inc();
            let mut exemplars = shared.engine.exemplars().slowest();
            if let Some(n) = n {
                exemplars.truncate(n);
            }
            let text = crate::reqtrace::render_trace(&exemplars);
            protocol::encode_ok(vec![
                (
                    "exemplars".into(),
                    crate::json::Json::Num(exemplars.len() as f64),
                ),
                ("trace".into(), crate::json::Json::Str(text)),
            ])
        }
        Request::Reload { path } => {
            stats.requests.inc();
            match Snapshot::load_from_file(std::path::Path::new(&path))
                .and_then(|snap| shared.engine.reload(snap))
            {
                Ok(()) => protocol::encode_ok(vec![(
                    "epoch".into(),
                    crate::json::Json::Num(shared.engine.epoch() as f64),
                )]),
                Err(e) => {
                    stats.errors.inc();
                    protocol::encode_error(&format!("reload failed: {e}"))
                }
            }
        }
        Request::Shutdown => {
            stats.requests.inc();
            shared.stopping.store(true, Ordering::Release);
            return (protocol::encode_ok(vec![]), true);
        }
    };
    (response, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::json::Json;
    use crate::snapshot::{DomainSnapshot, HeadKind};
    use nm_tensor::{Tensor, TensorRng};

    fn test_server() -> Server {
        let mut rng = TensorRng::seed_from(11);
        let mk = |rng: &mut TensorRng| DomainSnapshot {
            users: Tensor::randn(8, 4, 1.0, rng),
            items: Tensor::randn(40, 4, 1.0, rng),
            head: HeadKind::Dot,
        };
        let snap = Snapshot {
            model: "test".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        };
        let engine = Arc::new(
            Engine::new(
                snap,
                EngineConfig {
                    n_workers: 2,
                    ..Default::default()
                },
            )
            .expect("valid test snapshot"),
        );
        Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    fn roundtrip(addr: SocketAddr, lines: &[&str]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut out = Vec::new();
        for l in lines {
            writer.write_all(l.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            out.push(Json::parse(resp.trim()).unwrap());
        }
        out
    }

    #[test]
    fn serves_topk_stats_and_errors_over_tcp() {
        let mut server = test_server();
        let addr = server.local_addr();
        let resps = roundtrip(
            addr,
            &[
                r#"{"op":"topk","user":3,"domain":"a","k":5}"#,
                r#"{"op":"topk","user":3,"domain":"a","k":5}"#,
                r#"{"op":"score","user":3,"domain":"a","items":[0,1,2]}"#,
                r#"{"op":"topk","user":999,"domain":"a","k":5}"#,
                "this is not json",
                r#"{"op":"stats"}"#,
            ],
        );
        assert_eq!(resps[0].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(resps[0].get("items").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(resps[0].get("cached").unwrap().as_bool(), Some(false));
        // identical query: served from cache, same items
        assert_eq!(resps[1].get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            resps[0].get("items").unwrap(),
            resps[1].get("items").unwrap()
        );
        assert_eq!(resps[2].get("scores").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(resps[3].get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(resps[4].get("ok").unwrap().as_bool(), Some(false));
        let stats = resps[5].get("stats").unwrap();
        assert!(stats.get("requests").unwrap().as_f64().unwrap() >= 5.0);
        server.stop();
    }

    #[test]
    fn saturated_server_sheds_with_overloaded_error() {
        let mut rng = TensorRng::seed_from(5);
        let mk = |rng: &mut TensorRng| DomainSnapshot {
            users: Tensor::randn(8, 4, 1.0, rng),
            items: Tensor::randn(40, 4, 1.0, rng),
            head: HeadKind::Dot,
        };
        let snap = Snapshot {
            model: "test".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        };
        let engine = Arc::new(
            Engine::new(
                snap,
                EngineConfig {
                    n_workers: 1,
                    ..Default::default()
                },
            )
            .expect("valid test snapshot"),
        );
        let mut server = Server::start(
            Arc::clone(&engine),
            "127.0.0.1:0",
            ServerConfig {
                max_conns: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // First connection holds the only slot (handler parks in read).
        let holder = TcpStream::connect(addr).unwrap();
        // Wait until the slot is actually claimed, then a second
        // connection must be shed with a structured error, not block.
        let mut shed_resp = None;
        for _ in 0..200 {
            let extra = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(extra);
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) > 0 {
                shed_resp = Some(Json::parse(line.trim()).unwrap());
                break;
            }
            // raced ahead of the holder's accept; retry
            thread::sleep(Duration::from_millis(5));
        }
        let resp = shed_resp.expect("no shed response observed");
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        let err = resp.get("error").unwrap().as_str().unwrap().to_string();
        assert!(err.contains("overloaded"), "unexpected error: {err}");
        assert!(engine.stats().shed.get() >= 1);

        // Releasing the holder frees the slot and service resumes.
        drop(holder);
        let mut served = false;
        for _ in 0..200 {
            let resps = roundtrip(addr, &[r#"{"op":"topk","user":1,"domain":"a","k":3}"#]);
            if resps[0].get("ok").unwrap().as_bool() == Some(true) {
                served = true;
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert!(served, "server never recovered after shedding");
        server.stop();
    }

    #[test]
    fn trace_op_returns_validating_exemplar_trace() {
        let mut server = test_server();
        let addr = server.local_addr();
        let resps = roundtrip(
            addr,
            &[
                r#"{"op":"topk","user":3,"domain":"a","k":5}"#,
                r#"{"op":"topk","user":4,"domain":"b","k":7}"#,
                r#"{"op":"topk","user":3,"domain":"a","k":5}"#,
                r#"{"op":"trace"}"#,
                r#"{"op":"trace","n":1}"#,
            ],
        );
        assert_eq!(resps[3].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(resps[3].get("exemplars").unwrap().as_u64(), Some(3));
        let text = resps[3].get("trace").unwrap().as_str().unwrap();
        let recs = nm_obs::parse::parse_trace(text).expect("embedded trace parses strictly");
        let s = nm_obs::report::validate(&recs).expect("embedded trace validates");
        assert_eq!(s.events, 3, "one serve.exemplar event per request");
        assert!(s.spans >= 3, "at least one serve.request root per request");
        // `n` bounds the exemplar count
        assert_eq!(resps[4].get("exemplars").unwrap().as_u64(), Some(1));
        server.stop();
    }

    #[test]
    fn shutdown_request_stops_the_server() {
        let mut server = test_server();
        let addr = server.local_addr();
        let resps = roundtrip(addr, &[r#"{"op":"shutdown"}"#]);
        assert_eq!(resps[0].get("ok").unwrap().as_bool(), Some(true));
        server.wait();
        assert!(server.is_stopping());
    }
}
