//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Requests:
//!
//! ```text
//! {"op":"topk","user":7,"domain":"a","k":10}
//! {"op":"score","user":7,"domain":"b","items":[3,9,40]}
//! {"op":"stats"}
//! {"op":"obs"}
//! {"op":"series","window":30}
//! {"op":"trace","n":5}
//! {"op":"reload","path":"runs/exp1/model.nmss"}
//! {"op":"shutdown"}
//! ```
//!
//! Every response carries `"ok":true|false`; errors add `"error"` with
//! a message. See README "Serving" for the full schema.

use crate::json::Json;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    TopK {
        user: u32,
        domain: usize,
        k: usize,
    },
    Score {
        user: u32,
        domain: usize,
        items: Vec<u32>,
    },
    Stats,
    /// Full unified metrics-registry snapshot (superset of `stats`).
    Obs,
    /// Windowed time-series view from the flight recorder: the last
    /// `window` ticks folded into rates/quantiles plus SLO budget rows
    /// (default: the whole retained ring).
    Series {
        window: Option<usize>,
    },
    /// Slowest-request exemplars rendered as a schema-v1 trace.
    /// `n` limits how many exemplars are returned (default: all).
    Trace {
        n: Option<usize>,
    },
    Reload {
        path: String,
    },
    Shutdown,
}

fn parse_domain(v: &Json) -> Result<usize, String> {
    match v {
        Json::Str(s) if s == "a" || s == "A" => Ok(0),
        Json::Str(s) if s == "b" || s == "B" => Ok(1),
        Json::Num(_) => match v.as_u64() {
            Some(d @ (0 | 1)) => Ok(d as usize),
            _ => Err("domain must be \"a\", \"b\", 0, or 1".into()),
        },
        _ => Err("domain must be \"a\", \"b\", 0, or 1".into()),
    }
}

fn field<'a>(obj: &'a Json, name: &str) -> Result<&'a Json, String> {
    obj.get(name)
        .ok_or_else(|| format!("missing field '{name}'"))
}

fn u32_field(obj: &Json, name: &str) -> Result<u32, String> {
    field(obj, name)?
        .as_u64()
        .filter(|&v| v <= u32::MAX as u64)
        .map(|v| v as u32)
        .ok_or_else(|| format!("field '{name}' must be a u32"))
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line.trim())?;
    let op = field(&v, "op")?
        .as_str()
        .ok_or("field 'op' must be a string")?;
    match op {
        "topk" => {
            let user = u32_field(&v, "user")?;
            let domain = parse_domain(field(&v, "domain")?)?;
            let k = field(&v, "k")?
                .as_u64()
                .filter(|&k| (1..=100_000).contains(&k))
                .ok_or("field 'k' must be an integer in 1..=100000")? as usize;
            Ok(Request::TopK { user, domain, k })
        }
        "score" => {
            let user = u32_field(&v, "user")?;
            let domain = parse_domain(field(&v, "domain")?)?;
            let items = field(&v, "items")?
                .as_arr()
                .ok_or("field 'items' must be an array")?
                .iter()
                .map(|j| {
                    j.as_u64()
                        .filter(|&i| i <= u32::MAX as u64)
                        .map(|i| i as u32)
                        .ok_or_else(|| "items must be u32 ids".to_string())
                })
                .collect::<Result<Vec<u32>, String>>()?;
            Ok(Request::Score {
                user,
                domain,
                items,
            })
        }
        "stats" => Ok(Request::Stats),
        "obs" => Ok(Request::Obs),
        "series" => {
            let window = match v.get("window") {
                None => None,
                Some(j) => Some(
                    j.as_u64()
                        .filter(|&w| (1..=1_000_000).contains(&w))
                        .ok_or("field 'window' must be an integer in 1..=1000000")?
                        as usize,
                ),
            };
            Ok(Request::Series { window })
        }
        "trace" => {
            let n = match v.get("n") {
                None => None,
                Some(j) => Some(
                    j.as_u64()
                        .filter(|&n| (1..=10_000).contains(&n))
                        .ok_or("field 'n' must be an integer in 1..=10000")?
                        as usize,
                ),
            };
            Ok(Request::Trace { n })
        }
        "reload" => {
            let path = field(&v, "path")?
                .as_str()
                .ok_or("field 'path' must be a string")?
                .to_string();
            Ok(Request::Reload { path })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op '{other}'")),
    }
}

fn domain_name(domain: usize) -> &'static str {
    if domain == 0 {
        "a"
    } else {
        "b"
    }
}

/// `topk` success response.
pub fn encode_topk_response(
    user: u32,
    domain: usize,
    cached: bool,
    items: &[(u32, f32)],
) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("user".into(), Json::Num(user as f64)),
        ("domain".into(), Json::Str(domain_name(domain).into())),
        ("cached".into(), Json::Bool(cached)),
        (
            "items".into(),
            Json::Arr(items.iter().map(|&(i, _)| Json::Num(i as f64)).collect()),
        ),
        (
            "scores".into(),
            Json::Arr(items.iter().map(|&(_, s)| Json::Num(s as f64)).collect()),
        ),
    ])
    .encode()
}

/// `topk` response served in a degraded mode: `ok` stays true (the
/// client got a usable answer), but `degraded`/`reason` mark reduced
/// fidelity — `"partial"` (shards lost), `"stale"` (last good answer),
/// `"unavailable"` (empty), or `"deadline"` (full answer, over budget).
pub fn encode_topk_degraded(
    user: u32,
    domain: usize,
    reason: &str,
    items: &[(u32, f32)],
) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("user".into(), Json::Num(user as f64)),
        ("domain".into(), Json::Str(domain_name(domain).into())),
        ("cached".into(), Json::Bool(false)),
        ("degraded".into(), Json::Bool(true)),
        ("reason".into(), Json::Str(reason.into())),
        (
            "items".into(),
            Json::Arr(items.iter().map(|&(i, _)| Json::Num(i as f64)).collect()),
        ),
        (
            "scores".into(),
            Json::Arr(items.iter().map(|&(_, s)| Json::Num(s as f64)).collect()),
        ),
    ])
    .encode()
}

/// `score` success response.
pub fn encode_scores_response(user: u32, domain: usize, scores: &[f32]) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("user".into(), Json::Num(user as f64)),
        ("domain".into(), Json::Str(domain_name(domain).into())),
        (
            "scores".into(),
            Json::Arr(scores.iter().map(|&s| Json::Num(s as f64)).collect()),
        ),
    ])
    .encode()
}

/// Generic success response with extra fields.
pub fn encode_ok(extra: Vec<(String, Json)>) -> String {
    let mut pairs = vec![("ok".into(), Json::Bool(true))];
    pairs.extend(extra);
    Json::Obj(pairs).encode()
}

/// Error response.
pub fn encode_error(msg: &str) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(msg.into())),
    ])
    .encode()
}

/// Protocol-level error with a machine-readable `code` (`"timeout"`,
/// `"oversized"`, `"torn"`, `"malformed"`), sent before the server
/// closes or resynchronizes a misbehaving connection — never a silent
/// drop.
pub fn encode_proto_error(code: &str, msg: &str) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("code".into(), Json::Str(code.into())),
        ("error".into(), Json::Str(msg.into())),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_topk() {
        let r = parse_request(r#"{"op":"topk","user":7,"domain":"a","k":10}"#).unwrap();
        assert_eq!(
            r,
            Request::TopK {
                user: 7,
                domain: 0,
                k: 10
            }
        );
        // numeric domain also accepted
        let r = parse_request(r#"{"op":"topk","user":7,"domain":1,"k":3}"#).unwrap();
        assert_eq!(
            r,
            Request::TopK {
                user: 7,
                domain: 1,
                k: 3
            }
        );
    }

    #[test]
    fn parses_score_and_admin_ops() {
        let r = parse_request(r#"{"op":"score","user":2,"domain":"b","items":[5,1,8]}"#).unwrap();
        assert_eq!(
            r,
            Request::Score {
                user: 2,
                domain: 1,
                items: vec![5, 1, 8]
            }
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"op":"obs"}"#).unwrap(), Request::Obs);
        assert_eq!(
            parse_request(r#"{"op":"series"}"#).unwrap(),
            Request::Series { window: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"series","window":30}"#).unwrap(),
            Request::Series { window: Some(30) }
        );
        assert_eq!(
            parse_request(r#"{"op":"trace"}"#).unwrap(),
            Request::Trace { n: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"trace","n":5}"#).unwrap(),
            Request::Trace { n: Some(5) }
        );
        assert_eq!(
            parse_request(r#"{"op":"reload","path":"m.nmss"}"#).unwrap(),
            Request::Reload {
                path: "m.nmss".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            "not json",
            r#"{"user":1}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"topk","user":1,"domain":"c","k":5}"#,
            r#"{"op":"topk","user":1,"domain":"a","k":0}"#,
            r#"{"op":"topk","user":1,"domain":"a","k":1000000}"#,
            r#"{"op":"topk","user":-3,"domain":"a","k":5}"#,
            r#"{"op":"topk","user":1.5,"domain":"a","k":5}"#,
            r#"{"op":"score","user":1,"domain":"a","items":[1,"x"]}"#,
            r#"{"op":"trace","n":0}"#,
            r#"{"op":"trace","n":"all"}"#,
            r#"{"op":"reload"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn responses_are_single_line_json_with_ok() {
        let r = encode_topk_response(3, 0, true, &[(9, 1.5), (2, 0.5)]);
        assert!(!r.contains('\n'));
        let v = Json::parse(&r).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("domain").unwrap().as_str(), Some("a"));
        let items = v.get("items").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].as_u64(), Some(9));

        let e = encode_error("bad \"input\"");
        let v = Json::parse(&e).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("bad"));
    }

    #[test]
    fn degraded_and_proto_error_responses_are_structured() {
        let r = encode_topk_degraded(3, 1, "stale", &[(4, 2.0)]);
        let v = Json::parse(&r).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("stale"));
        assert_eq!(v.get("items").unwrap().as_arr().unwrap().len(), 1);

        let e = encode_proto_error("oversized", "frame exceeds 65536 bytes");
        let v = Json::parse(&e).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_str(), Some("oversized"));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("frame"));
    }

    #[test]
    fn score_response_preserves_order() {
        let r = encode_scores_response(1, 1, &[0.5, -1.25, 3.0]);
        let v = Json::parse(&r).unwrap();
        let s = v.get("scores").unwrap().as_arr().unwrap();
        assert_eq!(s[1].as_f64(), Some(-1.25));
        assert_eq!(v.get("domain").unwrap().as_str(), Some("b"));
    }
}
