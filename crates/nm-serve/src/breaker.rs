//! Per-shard circuit breakers for the scoring fan-out.
//!
//! The state machine itself lives in `nm-sync` ([`nm_sync::breaker`]):
//! classic closed → open → half-open, with cooldown measured in
//! *scoring passes* of the owning domain rather than wall time, so
//! breaker transitions replay identically under the same request
//! sequence (the no-wallclock discipline the rest of the workspace
//! follows). This module re-exports the types under their historical
//! `nm_serve::breaker` paths; the engine wraps the set in a
//! [`nm_sync::BreakerBank`] instantiated with the zero-cost
//! `StdBackend`, and `nm-check` model-checks the *same* bank code with
//! its virtual backend.

pub use nm_sync::breaker::{Admission, BreakerConfig, BreakerState, ShardBreakers, Transition};
