//! Sharded LRU cache of per-user recommendation lists.
//!
//! Keys include the snapshot epoch, so a reload logically invalidates
//! every cached list even before the physical `clear()` runs — a stale
//! epoch can never be looked up again.

use crate::sync::lock;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// Cache key for one materialized recommendation list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub user: u32,
    pub domain: u8,
    pub k: u32,
    /// Snapshot epoch at compute time; bumped on every reload.
    pub epoch: u64,
}

/// A ranked `(item, score)` list, shared without copying.
pub type CachedList = Arc<Vec<(u32, f32)>>;

struct Shard {
    map: HashMap<CacheKey, (u64, CachedList)>,
    capacity: usize,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) -> Option<CachedList> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            Arc::clone(&slot.1)
        })
    }

    fn insert(&mut self, key: CacheKey, value: CachedList) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // Evict the least-recently-used entry. Linear scan is fine:
            // shards are small and this is off the hot (hit) path.
            if let Some(&victim) = self.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| k) {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

/// A fixed-shard LRU keyed by [`CacheKey`]. Sharding bounds lock
/// contention: concurrent requests for different users almost always
/// hit different shards.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
}

impl ShardedLru {
    /// `capacity` is the total entry budget, split evenly over
    /// `n_shards` (both floored to at least 1).
    pub fn new(capacity: usize, n_shards: usize) -> Self {
        let n = n_shards.max(1);
        let per = (capacity / n).max(1);
        Self {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        capacity: per,
                        tick: 0,
                    })
                })
                .collect(),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        // FNV-1a over the key fields; cheap and well-spread.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in [key.user as u64, key.domain as u64, key.k as u64, key.epoch] {
            h ^= b;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Looks up and refreshes recency.
    pub fn get(&self, key: &CacheKey) -> Option<CachedList> {
        lock(&self.shards[self.shard_of(key)]).touch(key)
    }

    pub fn insert(&self, key: CacheKey, value: CachedList) {
        lock(&self.shards[self.shard_of(&key)]).insert(key, value);
    }

    /// Drops every entry (snapshot reload).
    pub fn clear(&self) {
        for s in &self.shards {
            lock(s).map.clear();
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u32, epoch: u64) -> CacheKey {
        CacheKey {
            user,
            domain: 0,
            k: 10,
            epoch,
        }
    }

    fn list(v: u32) -> CachedList {
        Arc::new(vec![(v, 1.0)])
    }

    #[test]
    fn get_after_insert() {
        let c = ShardedLru::new(16, 4);
        c.insert(key(1, 0), list(42));
        assert_eq!(c.get(&key(1, 0)).unwrap()[0].0, 42);
        assert!(c.get(&key(2, 0)).is_none());
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let c = ShardedLru::new(16, 4);
        c.insert(key(1, 0), list(1));
        assert!(c.get(&key(1, 1)).is_none(), "new epoch must miss");
    }

    #[test]
    fn evicts_least_recently_used() {
        // single shard, capacity 2 → deterministic eviction order
        let c = ShardedLru::new(2, 1);
        c.insert(key(1, 0), list(1));
        c.insert(key(2, 0), list(2));
        c.get(&key(1, 0)); // refresh 1 → 2 is now LRU
        c.insert(key(3, 0), list(3));
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(2, 0)).is_none(), "LRU entry should be evicted");
        assert!(c.get(&key(3, 0)).is_some());
    }

    #[test]
    fn clear_empties_all_shards() {
        let c = ShardedLru::new(16, 4);
        for u in 0..10 {
            c.insert(key(u, 0), list(u));
        }
        assert_eq!(c.len(), 10);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_same_key_does_not_evict_others() {
        let c = ShardedLru::new(2, 1);
        c.insert(key(1, 0), list(1));
        c.insert(key(2, 0), list(2));
        c.insert(key(1, 0), list(9)); // overwrite, still 2 entries
        assert_eq!(c.get(&key(1, 0)).unwrap()[0].0, 9);
        assert!(c.get(&key(2, 0)).is_some());
    }
}
