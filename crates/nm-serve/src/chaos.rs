//! Deterministic serve-side fault injection (the `ChaosPlan` of
//! DESIGN.md "Failure model & degraded modes").
//!
//! Training already has a seeded `FaultPlan` (kill-at-boundary, torn
//! write, bitflip); this module is its serving counterpart. Every
//! fault class is drawn from a seeded hash over *stable coordinates*
//! of the injection site — `(site, a, b, c)` tuples like
//! `(shard-fault, pass, shard, attempt)` — never from execution order,
//! so the fault schedule is identical across runs and independent of
//! thread interleaving: same seed ⇒ same faults ⇒ same degraded
//! responses. Rates are in permille (0 disables a class; 1000 fires
//! always).
//!
//! Fault classes:
//!
//! * **worker panic** — a scoring job panics mid-shard; the shard's
//!   latch guard still counts it down and the supervisor restarts the
//!   dead worker;
//! * **shard stall** — a shard claim fails without doing work
//!   (modelling a wedged/slow shard, clock-free: no real sleep);
//! * **torn write / torn read** — a connection's response is cut mid
//!   frame / a request frame arrives truncated;
//! * **reload failure** — a snapshot reload is rejected, exercising
//!   the last-good-snapshot fallback;
//! * **deadline expiry** — a request's deadline is forced to be
//!   already expired (clock-free timeout), exercising the stale-cache
//!   and unavailable degraded modes.

use nm_obs::Counter;
use std::sync::Arc;
use std::time::Duration;

/// Seeded fault-injection plan for the serve path. All rates are
/// permille (x/1000 of draws at that site fire).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    pub seed: u64,
    /// A claimed shard's scoring job panics.
    pub worker_panic_permille: u32,
    /// A claimed shard fails without scoring (wedged shard).
    pub shard_stall_permille: u32,
    /// A response frame is cut mid-write and the connection closed.
    pub torn_write_permille: u32,
    /// A request frame is truncated before parsing.
    pub torn_read_permille: u32,
    /// A snapshot reload is rejected (last-good stays live).
    pub reload_fail_permille: u32,
    /// A request's deadline is forced to be already expired.
    pub deadline_expire_permille: u32,
}

impl ChaosConfig {
    /// True when at least one fault class can fire.
    pub fn enabled(&self) -> bool {
        self.worker_panic_permille
            + self.shard_stall_permille
            + self.torn_write_permille
            + self.torn_read_permille
            + self.reload_fail_permille
            + self.deadline_expire_permille
            > 0
    }
}

/// Injection-site tags: part of the draw coordinates, so two fault
/// classes at the same site draw independently.
const SITE_WORKER_PANIC: u64 = 1;
const SITE_SHARD_STALL: u64 = 2;
const SITE_TORN_WRITE: u64 = 3;
const SITE_TORN_READ: u64 = 4;
const SITE_RELOAD_FAIL: u64 = 5;
const SITE_DEADLINE: u64 = 6;

/// SplitMix64 finalizer: a cheap, well-mixed hash for draw decisions.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic permille draw keyed on `(seed, site, a, b, c)`.
#[inline]
fn draw_permille(seed: u64, site: u64, a: u64, b: u64, c: u64) -> u32 {
    let h = mix(seed.wrapping_mul(0x9e3779b97f4a7c15)
        ^ mix(site)
        ^ mix(a).rotate_left(17)
        ^ mix(b).rotate_left(31)
        ^ mix(c).rotate_left(47));
    (h % 1000) as u32
}

/// Deterministic exponential backoff with seeded jitter: attempt 1 ⇒
/// `base`, attempt 2 ⇒ `2·base`, … capped at `cap`, plus a jitter of
/// up to half the step keyed on `(seed, salt, attempt)` so retry
/// schedules are reproducible yet de-synchronized across sites.
pub fn seeded_backoff(
    base: Duration,
    cap: Duration,
    attempt: u32,
    seed: u64,
    salt: u64,
) -> Duration {
    let base_us = base.as_micros().min(u64::MAX as u128) as u64;
    let cap_us = cap.as_micros().min(u64::MAX as u128) as u64;
    let step = base_us
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
        .min(cap_us)
        .max(1);
    let jitter = mix(seed ^ mix(salt) ^ mix(attempt as u64)) % (step / 2 + 1);
    Duration::from_micros(step.saturating_add(jitter).min(cap_us))
}

/// The runtime half of a [`ChaosConfig`]: draws faults and counts
/// every injection in the shared metrics registry (`chaos.injected.*`)
/// plus a typed `chaos.inject` trace event per firing.
#[derive(Debug)]
pub struct Chaos {
    cfg: ChaosConfig,
    pub total: Arc<Counter>,
    pub worker_panics: Arc<Counter>,
    pub shard_stalls: Arc<Counter>,
    pub torn_writes: Arc<Counter>,
    pub torn_reads: Arc<Counter>,
    pub reload_fails: Arc<Counter>,
    pub deadline_expiries: Arc<Counter>,
}

impl Chaos {
    /// Wires the injection counters into `registry` (the engine's
    /// stats registry, so `{"op":"obs"}` exposes them).
    pub fn new(cfg: ChaosConfig, registry: &nm_obs::Registry) -> Self {
        Self {
            cfg,
            total: registry.counter("chaos.injected.total"),
            worker_panics: registry.counter("chaos.injected.worker_panic"),
            shard_stalls: registry.counter("chaos.injected.shard_stall"),
            torn_writes: registry.counter("chaos.injected.torn_write"),
            torn_reads: registry.counter("chaos.injected.torn_read"),
            reload_fails: registry.counter("chaos.injected.reload_fail"),
            deadline_expiries: registry.counter("chaos.injected.deadline_expire"),
        }
    }

    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    #[allow(clippy::too_many_arguments)] // one draw site, three coordinates
    fn fire(&self, rate: u32, site: u64, kind: &str, c: &Counter, a: u64, b: u64, d: u64) -> bool {
        if rate == 0 || draw_permille(self.cfg.seed, site, a, b, d) >= rate {
            return false;
        }
        c.inc();
        self.total.inc();
        nm_obs::trace::event("chaos.inject", |e| {
            e.s("kind", kind).u("a", a).u("b", b).u("c", d);
        });
        true
    }

    /// Shard-fault draw: should the job claiming shard `shard` of
    /// scoring pass `pass` (retry `attempt`) panic?
    pub fn worker_panic(&self, domain: usize, pass: u64, shard: usize, attempt: u32) -> bool {
        self.fire(
            self.cfg.worker_panic_permille,
            SITE_WORKER_PANIC ^ ((domain as u64) << 8),
            "worker_panic",
            &self.worker_panics,
            pass,
            shard as u64,
            attempt as u64,
        )
    }

    /// Shard-fault draw: should this shard claim stall (fail without
    /// scoring)?
    pub fn shard_stall(&self, domain: usize, pass: u64, shard: usize, attempt: u32) -> bool {
        self.fire(
            self.cfg.shard_stall_permille,
            SITE_SHARD_STALL ^ ((domain as u64) << 8),
            "shard_stall",
            &self.shard_stalls,
            pass,
            shard as u64,
            attempt as u64,
        )
    }

    /// Connection-fault draw: cut response `req` of connection `conn`
    /// mid-frame?
    pub fn torn_write(&self, conn: u64, req: u64) -> bool {
        self.fire(
            self.cfg.torn_write_permille,
            SITE_TORN_WRITE,
            "torn_write",
            &self.torn_writes,
            conn,
            req,
            0,
        )
    }

    /// Connection-fault draw: truncate request frame `req` of
    /// connection `conn` before parsing?
    pub fn torn_read(&self, conn: u64, req: u64) -> bool {
        self.fire(
            self.cfg.torn_read_permille,
            SITE_TORN_READ,
            "torn_read",
            &self.torn_reads,
            conn,
            req,
            0,
        )
    }

    /// Reload-fault draw: reject reload number `ordinal`?
    pub fn reload_fail(&self, ordinal: u64) -> bool {
        self.fire(
            self.cfg.reload_fail_permille,
            SITE_RELOAD_FAIL,
            "reload_fail",
            &self.reload_fails,
            ordinal,
            0,
            0,
        )
    }

    /// Request-fault draw: force request `req` of connection `conn` to
    /// start with an already-expired deadline (clock-free timeout)?
    pub fn deadline_expire(&self, conn: u64, req: u64) -> bool {
        self.fire(
            self.cfg.deadline_expire_permille,
            SITE_DEADLINE,
            "deadline_expire",
            &self.deadline_expiries,
            conn,
            req,
            0,
        )
    }
}

/// A per-request deadline in the [`nm_obs::clock`] domain, propagated
/// through parse → cache → coalesce → fanout → merge. `forced` is the
/// clock-free chaos variant: the deadline reads as already expired at
/// every stage boundary without any real time passing, so deadline
/// handling is testable deterministically.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    expires_us: u64,
    forced: bool,
}

impl Deadline {
    /// Expires `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self {
            expires_us: nm_obs::clock::now_us()
                .saturating_add(budget.as_micros().min(u64::MAX as u128) as u64),
            forced: false,
        }
    }

    /// Never expires (back-compat path for deadline-less callers).
    pub fn unbounded() -> Self {
        Self {
            expires_us: u64::MAX,
            forced: false,
        }
    }

    /// The chaos variant: already expired, without consuming time.
    pub fn forced_expired(mut self) -> Self {
        self.forced = true;
        self
    }

    /// True for the never-expiring back-compat deadline.
    pub fn is_unbounded(&self) -> bool {
        !self.forced && self.expires_us == u64::MAX
    }

    pub fn expired(&self) -> bool {
        self.forced || nm_obs::clock::now_us() >= self.expires_us
    }

    /// Remaining budget (zero once expired).
    pub fn remaining(&self) -> Duration {
        if self.forced {
            return Duration::ZERO;
        }
        Duration::from_micros(self.expires_us.saturating_sub(nm_obs::clock::now_us()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos(cfg: ChaosConfig) -> Chaos {
        Chaos::new(cfg, &nm_obs::Registry::new())
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig {
            seed: 42,
            worker_panic_permille: 200,
            shard_stall_permille: 150,
            ..Default::default()
        };
        let a = chaos(cfg.clone());
        let b = chaos(cfg);
        let draws_a: Vec<bool> = (0..200)
            .map(|i| a.worker_panic(i % 2, i as u64, (i * 3) % 7, 0))
            .collect();
        let draws_b: Vec<bool> = (0..200)
            .map(|i| b.worker_panic(i % 2, i as u64, (i * 3) % 7, 0))
            .collect();
        assert_eq!(draws_a, draws_b);
        assert!(
            draws_a.iter().any(|&x| x),
            "rate 200/1000 must fire in 200 draws"
        );
        assert!(
            !draws_a.iter().all(|&x| x),
            "rate 200/1000 must not always fire"
        );
        assert_eq!(a.worker_panics.get(), b.worker_panics.get());
        assert_eq!(a.total.get(), b.total.get());
    }

    #[test]
    fn different_seeds_differ_and_rates_roughly_hold() {
        let mk = |seed| {
            chaos(ChaosConfig {
                seed,
                shard_stall_permille: 500,
                ..Default::default()
            })
        };
        let a = mk(1);
        let b = mk(2);
        let da: Vec<bool> = (0..500).map(|i| a.shard_stall(0, i, 0, 0)).collect();
        let db: Vec<bool> = (0..500).map(|i| b.shard_stall(0, i, 0, 0)).collect();
        assert_ne!(da, db, "seeds 1 and 2 drew identical schedules");
        // rate 500‰ over 500 draws: expect roughly half, generously bounded
        let hits = da.iter().filter(|&&x| x).count();
        assert!((150..=350).contains(&hits), "hits={hits}");
    }

    #[test]
    fn zero_rate_never_fires_and_disabled_reports() {
        let c = chaos(ChaosConfig {
            seed: 9,
            ..Default::default()
        });
        assert!(!c.config().enabled());
        for i in 0..100 {
            assert!(!c.worker_panic(0, i, 0, 0));
            assert!(!c.torn_write(i, i));
            assert!(!c.reload_fail(i));
        }
        assert_eq!(c.total.get(), 0);
    }

    #[test]
    fn fault_classes_draw_independently() {
        let c = chaos(ChaosConfig {
            seed: 7,
            worker_panic_permille: 300,
            shard_stall_permille: 300,
            ..Default::default()
        });
        let panics: Vec<bool> = (0..300).map(|i| c.worker_panic(0, i, 1, 0)).collect();
        let stalls: Vec<bool> = (0..300).map(|i| c.shard_stall(0, i, 1, 0)).collect();
        assert_ne!(panics, stalls, "sites must not alias");
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let base = Duration::from_micros(100);
        let cap = Duration::from_micros(2_000);
        let b1 = seeded_backoff(base, cap, 1, 5, 0);
        let b2 = seeded_backoff(base, cap, 2, 5, 0);
        let b9 = seeded_backoff(base, cap, 9, 5, 0);
        assert!(b1 >= base && b1 <= Duration::from_micros(150));
        assert!(b2 > b1, "attempt 2 must back off further");
        assert!(b9 <= cap, "backoff must cap");
        assert_eq!(b2, seeded_backoff(base, cap, 2, 5, 0));
        assert_ne!(
            seeded_backoff(base, cap, 2, 5, 1),
            seeded_backoff(base, cap, 2, 5, 2),
            "salt must jitter the schedule"
        );
    }

    #[test]
    fn forced_deadline_expires_without_time_passing() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3000));
        let f = d.forced_expired();
        assert!(f.expired());
        assert_eq!(f.remaining(), Duration::ZERO);
        assert!(!Deadline::unbounded().expired());
    }
}
