//! Frozen-model snapshots: the serving-side artifact format.
//!
//! A snapshot holds everything needed to answer scoring requests with
//! no autograd tape and no graph propagation: per-domain user and item
//! embedding tables frozen *after* propagation (so GNN models export
//! their propagated tables) plus the prediction head — either a plain
//! dot product or the model's prediction MLP.
//!
//! Binary layout (`NMSS`, little-endian, versioned alongside `NMCK`):
//!
//! ```text
//! magic   "NMSS"            4 bytes
//! version u32               (currently 1)
//! model   u32 len + bytes   (UTF-8 model name)
//! 2 x domain:
//!   users  tensor           (rows u32, cols u32, f32 data)
//!   items  tensor
//!   head   u32              0 = dot, 1 = mlp
//!   if mlp:
//!     act      u32          0 relu, 1 tanh, 2 sigmoid, 3 none
//!     n_layers u32
//!     per layer: W tensor, has_bias u32, [bias tensor]
//! ```
//!
//! Scoring here is **bit-for-bit identical** to the offline eval path:
//! the dot head replicates `dot_scores`' sequential dot, and the MLP
//! head replicates `Tensor::matmul`'s k-ascending zero-skipping
//! accumulation (via [`nm_tensor::vecmat_blocked`]) with the bias added
//! after the full accumulation, exactly like the tape's broadcast add.

use nm_nn::checkpoint::{read_tensor, read_u32, write_tensor, write_u32, CheckpointError};
use nm_nn::Activation;
use nm_tensor::{sigmoid_scalar, vecmat_blocked, vecmat_nt_blocked, Tensor};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NMSS";
const VERSION: u32 = 1;

/// A prediction MLP frozen as plain weight/bias tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpHead {
    /// `(W, bias)` per layer; `W` is `in x out`, bias `1 x out`.
    pub layers: Vec<(Tensor, Option<Tensor>)>,
    /// Activation between hidden layers (never after the last).
    pub hidden_act: Activation,
}

/// How a domain's `(user, item)` affinity is computed.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadKind {
    /// `score = u · v` (matrix-factorization models).
    Dot,
    /// `score = MLP(u ‖ v)` (NMCDR and the GNN baselines).
    Mlp(MlpHead),
}

/// Frozen tables + head for one domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSnapshot {
    pub users: Tensor,
    pub items: Tensor,
    pub head: HeadKind,
}

/// A complete serving artifact for a two-domain CDR model.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Model name (e.g. "NMCDR", "BPR") for observability.
    pub model: String,
    pub domains: [DomainSnapshot; 2],
}

/// Trained models that can export a [`Snapshot`].
///
/// Takes `&mut self` because exporting runs the model's own
/// `prepare_eval`-style propagation to freeze post-propagation tables.
pub trait FrozenModel {
    fn export_frozen(&mut self) -> Snapshot;
}

fn act_tag(a: Activation) -> u32 {
    match a {
        Activation::Relu => 0,
        Activation::Tanh => 1,
        Activation::Sigmoid => 2,
        Activation::None => 3,
    }
}

fn act_from_tag(t: u32) -> Result<Activation, CheckpointError> {
    Ok(match t {
        0 => Activation::Relu,
        1 => Activation::Tanh,
        2 => Activation::Sigmoid,
        3 => Activation::None,
        _ => return Err(CheckpointError::Format(format!("unknown activation {t}"))),
    })
}

fn apply_act(act: Activation, xs: &mut [f32]) {
    match act {
        Activation::Relu => xs.iter_mut().for_each(|x| *x = x.max(0.0)),
        Activation::Tanh => xs.iter_mut().for_each(|x| *x = x.tanh()),
        Activation::Sigmoid => xs.iter_mut().for_each(|x| *x = sigmoid_scalar(*x)),
        Activation::None => {}
    }
}

impl MlpHead {
    /// Freezes a trained [`nm_nn::Mlp`] into plain tensors.
    pub fn from_mlp(mlp: &nm_nn::Mlp) -> MlpHead {
        MlpHead {
            layers: (0..mlp.n_layers())
                .map(|i| {
                    let l = mlp.layer(i);
                    (l.weight().value(), l.bias().map(|b| b.value()))
                })
                .collect(),
            hidden_act: mlp.hidden_act(),
        }
    }

    /// Forward pass on one concatenated `(u ‖ v)` input row. Returns
    /// the single logit.
    fn forward(&self, x: Vec<f32>) -> f32 {
        let last = self.layers.len() - 1;
        let mut cur = x;
        for (i, (w, b)) in self.layers.iter().enumerate() {
            let mut y = vecmat_blocked(
                &cur,
                w.data(),
                w.rows(),
                w.cols(),
                b.as_ref().map(|t| t.data()),
            );
            if i < last {
                apply_act(self.hidden_act, &mut y);
            }
            cur = y;
        }
        debug_assert_eq!(cur.len(), 1, "prediction head must emit one logit");
        cur[0]
    }

    fn validate(&self, in_dim: usize) -> Result<(), CheckpointError> {
        let mut d = in_dim;
        for (i, (w, b)) in self.layers.iter().enumerate() {
            if w.rows() != d {
                return Err(CheckpointError::Format(format!(
                    "head layer {i}: expected {d} inputs, weight is {}x{}",
                    w.rows(),
                    w.cols()
                )));
            }
            if let Some(b) = b {
                if b.shape() != (1, w.cols()) {
                    return Err(CheckpointError::Format(format!(
                        "head layer {i}: bias shape {}x{} != 1x{}",
                        b.rows(),
                        b.cols(),
                        w.cols()
                    )));
                }
            }
            d = w.cols();
        }
        if d != 1 {
            return Err(CheckpointError::Format(format!(
                "head must end in one logit, got {d}"
            )));
        }
        Ok(())
    }
}

impl Snapshot {
    /// Structural validation: table dims agree with the head shape.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        for (z, d) in self.domains.iter().enumerate() {
            let (du, di) = (d.users.cols(), d.items.cols());
            match &d.head {
                HeadKind::Dot => {
                    if du != di {
                        return Err(CheckpointError::Format(format!(
                            "domain {z}: dot head needs equal dims, users {du} items {di}"
                        )));
                    }
                }
                HeadKind::Mlp(h) => h.validate(du + di)?,
            }
        }
        Ok(())
    }

    pub fn n_users(&self, domain: usize) -> usize {
        self.domains[domain].users.rows()
    }

    pub fn n_items(&self, domain: usize) -> usize {
        self.domains[domain].items.rows()
    }

    /// Scores parallel `(user, item)` pairs — the serving twin of the
    /// models' `eval_scores`, bit-for-bit.
    pub fn score_pairs(&self, domain: usize, users: &[u32], items: &[u32]) -> Vec<f32> {
        assert_eq!(users.len(), items.len(), "parallel pair arrays");
        let d = &self.domains[domain];
        match &d.head {
            HeadKind::Dot => users
                .iter()
                .zip(items)
                .map(|(&u, &i)| {
                    let ur = d.users.row_slice(u as usize);
                    let ir = d.items.row_slice(i as usize);
                    ur.iter().zip(ir).map(|(a, b)| a * b).sum()
                })
                .collect(),
            HeadKind::Mlp(h) => users
                .iter()
                .zip(items)
                .map(|(&u, &i)| {
                    let ur = d.users.row_slice(u as usize);
                    let ir = d.items.row_slice(i as usize);
                    let mut x = Vec::with_capacity(ur.len() + ir.len());
                    x.extend_from_slice(ur);
                    x.extend_from_slice(ir);
                    h.forward(x)
                })
                .collect(),
        }
    }

    /// Scores one user against the item id range `lo..hi` of a domain,
    /// writing into `out` (`out.len() == hi - lo`). This is the shard
    /// kernel the retrieval engine fans out over worker threads.
    pub fn score_user_range(
        &self,
        domain: usize,
        user: u32,
        lo: usize,
        hi: usize,
        out: &mut [f32],
    ) {
        assert_eq!(out.len(), hi - lo, "output buffer size");
        let d = &self.domains[domain];
        let ur = d.users.row_slice(user as usize);
        match &d.head {
            HeadKind::Dot => {
                let k = d.items.cols();
                let rows = &d.items.data()[lo * k..hi * k];
                let scores = vecmat_nt_blocked(ur, rows, hi - lo, k, None);
                out.copy_from_slice(&scores);
            }
            HeadKind::Mlp(h) => {
                let k = d.items.cols();
                for (j, o) in (lo..hi).zip(out.iter_mut()) {
                    let mut x = Vec::with_capacity(ur.len() + k);
                    x.extend_from_slice(ur);
                    x.extend_from_slice(d.items.row_slice(j));
                    *o = h.forward(x);
                }
            }
        }
    }

    /// Serializes the snapshot.
    pub fn save<W: Write>(&self, w: &mut W) -> Result<(), CheckpointError> {
        w.write_all(MAGIC)?;
        write_u32(w, VERSION)?;
        let name = self.model.as_bytes();
        write_u32(w, name.len() as u32)?;
        w.write_all(name)?;
        for d in &self.domains {
            write_tensor(w, &d.users)?;
            write_tensor(w, &d.items)?;
            match &d.head {
                HeadKind::Dot => write_u32(w, 0)?,
                HeadKind::Mlp(h) => {
                    write_u32(w, 1)?;
                    write_u32(w, act_tag(h.hidden_act))?;
                    write_u32(w, h.layers.len() as u32)?;
                    for (wt, b) in &h.layers {
                        write_tensor(w, wt)?;
                        match b {
                            Some(b) => {
                                write_u32(w, 1)?;
                                write_tensor(w, b)?;
                            }
                            None => write_u32(w, 0)?,
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Writes the snapshot atomically (temp sibling + fsync + rename),
    /// so a crash mid-export — or a `reload` racing the writer — never
    /// observes a torn file.
    pub fn save_to_file(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut buf = Vec::new();
        self.save(&mut buf)?;
        nm_nn::checkpoint::atomic_write_bytes(path, &buf)?;
        Ok(())
    }

    /// Deserializes and validates a snapshot. Truncation and garbage
    /// are `Format` errors, matching the `NMCK` loader's contract.
    pub fn load<R: Read>(r: &mut R) -> Result<Snapshot, CheckpointError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CheckpointError::Format("truncated file".into())
            } else {
                CheckpointError::Io(e)
            }
        })?;
        if &magic != MAGIC {
            return Err(CheckpointError::Format("bad snapshot magic".into()));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(CheckpointError::Format(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let name_len = read_u32(r)? as usize;
        if name_len > 1 << 16 {
            return Err(CheckpointError::Format("unreasonable name length".into()));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                CheckpointError::Format("truncated file".into())
            } else {
                CheckpointError::Io(e)
            }
        })?;
        let model = String::from_utf8(name)
            .map_err(|_| CheckpointError::Format("non-utf8 model name".into()))?;
        let mut domains = Vec::with_capacity(2);
        for _ in 0..2 {
            let users = read_tensor(r)?;
            let items = read_tensor(r)?;
            let head = match read_u32(r)? {
                0 => HeadKind::Dot,
                1 => {
                    let hidden_act = act_from_tag(read_u32(r)?)?;
                    let n_layers = read_u32(r)? as usize;
                    if n_layers == 0 || n_layers > 64 {
                        return Err(CheckpointError::Format(format!(
                            "unreasonable head depth {n_layers}"
                        )));
                    }
                    let mut layers = Vec::with_capacity(n_layers);
                    for _ in 0..n_layers {
                        let w = read_tensor(r)?;
                        let b = match read_u32(r)? {
                            0 => None,
                            1 => Some(read_tensor(r)?),
                            x => return Err(CheckpointError::Format(format!("bad bias flag {x}"))),
                        };
                        layers.push((w, b));
                    }
                    HeadKind::Mlp(MlpHead { layers, hidden_act })
                }
                x => return Err(CheckpointError::Format(format!("unknown head kind {x}"))),
            };
            domains.push(DomainSnapshot { users, items, head });
        }
        let mut it = domains.into_iter();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(CheckpointError::Format("missing domain snapshot".into()));
        };
        let snap = Snapshot {
            model,
            domains: [a, b],
        };
        snap.validate()?;
        Ok(snap)
    }

    pub fn load_from_file(path: &Path) -> Result<Snapshot, CheckpointError> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::load(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_tensor::TensorRng;

    fn dot_snapshot() -> Snapshot {
        let mut rng = TensorRng::seed_from(1);
        let mk = |rng: &mut TensorRng| DomainSnapshot {
            users: Tensor::randn(8, 4, 1.0, rng),
            items: Tensor::randn(12, 4, 1.0, rng),
            head: HeadKind::Dot,
        };
        Snapshot {
            model: "BPR".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        }
    }

    fn mlp_snapshot() -> Snapshot {
        let mut rng = TensorRng::seed_from(2);
        let mk = |rng: &mut TensorRng| {
            let d = 4;
            DomainSnapshot {
                users: Tensor::randn(8, d, 1.0, rng),
                items: Tensor::randn(12, d, 1.0, rng),
                head: HeadKind::Mlp(MlpHead {
                    layers: vec![
                        (
                            Tensor::randn(2 * d, d, 0.5, rng),
                            Some(Tensor::randn(1, d, 0.5, rng)),
                        ),
                        (
                            Tensor::randn(d, 1, 0.5, rng),
                            Some(Tensor::randn(1, 1, 0.5, rng)),
                        ),
                    ],
                    hidden_act: Activation::Relu,
                }),
            }
        };
        Snapshot {
            model: "NMCDR".into(),
            domains: [mk(&mut rng), mk(&mut rng)],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        for snap in [dot_snapshot(), mlp_snapshot()] {
            let mut buf = Vec::new();
            snap.save(&mut buf).unwrap();
            let back = Snapshot::load(&mut buf.as_slice()).unwrap();
            assert_eq!(back, snap);
        }
    }

    #[test]
    fn truncated_snapshot_is_format_error() {
        let snap = mlp_snapshot();
        let mut buf = Vec::new();
        snap.save(&mut buf).unwrap();
        for cut in [0, 3, 4, 8, 10, buf.len() / 3, buf.len() - 1] {
            let err = Snapshot::load(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Snapshot::load(&mut &b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn validate_catches_dim_mismatch() {
        let mut snap = dot_snapshot();
        let mut rng = TensorRng::seed_from(3);
        snap.domains[1].items = Tensor::randn(12, 5, 1.0, &mut rng);
        assert!(snap.validate().is_err());
    }

    #[test]
    fn score_user_range_matches_score_pairs() {
        for snap in [dot_snapshot(), mlp_snapshot()] {
            let n = snap.n_items(0);
            let items: Vec<u32> = (0..n as u32).collect();
            let users = vec![3u32; n];
            let pairwise = snap.score_pairs(0, &users, &items);
            let mut ranged = vec![0.0f32; n];
            // split the range unevenly to cross shard boundaries
            snap.score_user_range(0, 3, 0, 5, &mut ranged[0..5]);
            snap.score_user_range(0, 3, 5, n, &mut ranged[5..]);
            assert_eq!(ranged, pairwise, "shard kernel must match pair kernel");
        }
    }

    #[test]
    fn mlp_forward_matches_reference() {
        // Tiny hand-checked case: identity-ish single layer.
        let head = MlpHead {
            layers: vec![(
                Tensor::new(2, 1, vec![1.0, 2.0]),
                Some(Tensor::new(1, 1, vec![0.5])),
            )],
            hidden_act: Activation::Relu,
        };
        assert_eq!(head.forward(vec![3.0, 4.0]), 3.0 + 8.0 + 0.5);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("nm_serve_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.nmss");
        let snap = mlp_snapshot();
        snap.save_to_file(&path).unwrap();
        assert_eq!(Snapshot::load_from_file(&path).unwrap(), snap);
        std::fs::remove_dir_all(&dir).ok();
    }
}
