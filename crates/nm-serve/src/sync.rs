//! Poison-tolerant synchronization helpers.
//!
//! A poisoned lock means some other thread panicked while holding it.
//! Every critical section in this crate either completes its invariant
//! or leaves state a later request can safely recompute (cache entries,
//! queue membership, counters), so the right recovery is to take the
//! guard and keep serving rather than propagate the panic to every
//! unrelated connection.
//!
//! The extracted concurrent cores (coalescer, breakers, exemplar ring,
//! connection gate, respawn path) now live in `nm-sync` behind its
//! `Backend` trait and apply the same discipline via
//! `nm_sync::backend::lock_recover`; what remains here serves the
//! crate-local plumbing (worker pool, latches, snapshot versioning).

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Read-locks, recovering from poisoning.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-locks, recovering from poisoning.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Condvar wait that survives poisoning. Safe because every caller
/// re-checks its predicate in a loop (the spurious-wakeup discipline).
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
