//! End-to-end chaos harness: a server with every fault class enabled is
//! driven by a deterministic sequential workload, twice. The contract:
//!
//! * same seed ⇒ same fault schedule ⇒ byte-identical transcripts and
//!   identical resilience counters across runs;
//! * every request is answered — correctly, with a structured degraded
//!   reply, or with a structured protocol error after a torn frame —
//!   within a bounded client read timeout (no hangs, no silent drops);
//! * counter conservation holds on the final stats snapshot.

use nm_serve::{
    BreakerConfig, ChaosConfig, DomainSnapshot, Engine, EngineConfig, HeadKind, Json,
    ResilienceConfig, Server, ServerConfig, Snapshot,
};
use nm_tensor::{Tensor, TensorRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const REQUESTS: usize = 60;
const RELOAD_AT: [usize; 3] = [20, 35, 50];
const CHAOS_SEED: u64 = 0xC4A0_5;

fn make_snapshot(seed: u64) -> Snapshot {
    let mut rng = TensorRng::seed_from(seed);
    let mk = |rng: &mut TensorRng| DomainSnapshot {
        users: Tensor::randn(16, 8, 1.0, rng),
        items: Tensor::randn(60, 8, 1.0, rng),
        head: HeadKind::Dot,
    };
    Snapshot {
        model: "chaos".into(),
        domains: [mk(&mut rng), mk(&mut rng)],
    }
}

fn chaos_config() -> ChaosConfig {
    ChaosConfig {
        seed: CHAOS_SEED,
        // High enough that each class fires several times in 60
        // requests; exact firings are pinned by the seed either way.
        worker_panic_permille: 300,
        shard_stall_permille: 300,
        torn_write_permille: 120,
        torn_read_permille: 120,
        reload_fail_permille: 500,
        deadline_expire_permille: 150,
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        n_workers: 2,
        shard_items: 16, // 60 items -> 4 shards per domain
        resilience: ResilienceConfig {
            shard_retries: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_passes: 4,
            },
            ..Default::default()
        },
        chaos: Some(chaos_config()),
        ..Default::default()
    }
}

/// One full scenario: sequential client, fixed request schedule with
/// three mid-stream reloads, reconnecting after torn writes. Returns
/// the response transcript plus the resilience counters whose values
/// are functions of the fault schedule alone (scheduler-dependent
/// counters like worker restarts are deliberately excluded).
fn run_scenario() -> (Vec<String>, Vec<(&'static str, u64)>) {
    let engine = Arc::new(Engine::new(make_snapshot(9), engine_config()).expect("valid snapshot"));
    let mut server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            // Forced expiry (chaos) is the only deadline path we want;
            // a huge wall-clock deadline keeps slow CI from adding
            // nondeterministic "late" degrades.
            deadline: Duration::from_secs(30),
            ..Default::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let dir = std::env::temp_dir().join(format!(
        "nm_chaos_harness_{}_{}",
        std::process::id(),
        engine.stats().requests.get() // 0; keeps the path unique enough
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let reload_path = dir.join("next.nmss");
    make_snapshot(10).save_to_file(&reload_path).unwrap();

    let connect = || {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let w = s.try_clone().unwrap();
        (w, BufReader::new(s))
    };
    let (mut writer, mut reader) = connect();

    let mut transcript = Vec::new();
    for i in 0..REQUESTS {
        let line = if RELOAD_AT.contains(&i) {
            format!(
                "{{\"op\":\"reload\",\"path\":\"{}\"}}\n",
                reload_path.display()
            )
        } else {
            let user = (i % 12) as u32;
            let domain = if i % 2 == 0 { "a" } else { "b" };
            format!("{{\"op\":\"topk\",\"user\":{user},\"domain\":\"{domain}\",\"k\":5}}\n")
        };
        writer.write_all(line.as_bytes()).expect("send");
        writer.flush().unwrap();
        let mut resp = String::new();
        let n = reader.read_line(&mut resp).expect("reply within timeout");
        assert!(n > 0, "request {i}: connection closed with no reply at all");
        if resp.ends_with('\n') {
            let v = Json::parse(resp.trim())
                .unwrap_or_else(|e| panic!("request {i}: corrupt reply {resp:?}: {e}"));
            assert!(
                v.get("ok").and_then(|o| o.as_bool()).is_some(),
                "request {i}: reply without ok field: {resp}"
            );
            transcript.push(resp.trim().to_string());
        } else {
            // Torn write: the fault schedule cut the response and the
            // server closed the connection. Record the tear (its length
            // is part of the deterministic contract) and reconnect.
            transcript.push(format!("<torn:{n}>"));
            let (w2, r2) = connect();
            writer = w2;
            reader = r2;
        }
    }

    let s = engine.stats();
    let counters = vec![
        ("requests", s.requests.get()),
        ("errors", s.errors.get()),
        ("cache_hits", s.cache_hits.get()),
        ("batches", s.batches.get()),
        ("worker_panics", s.worker_panics.get()),
        ("shard_retried", s.shard_retried.get()),
        ("shard_failures", s.shard_failures.get()),
        ("breaker_opens", s.breaker_opens.get()),
        ("breaker_half_opens", s.breaker_half_opens.get()),
        ("breaker_closes", s.breaker_closes.get()),
        ("breaker_short_circuits", s.breaker_short_circuits.get()),
        ("degraded_partial", s.degraded_partial.get()),
        ("degraded_stale", s.degraded_stale.get()),
        ("degraded_unavailable", s.degraded_unavailable.get()),
        ("deadline_shed", s.deadline_shed.get()),
        ("reload_ok", s.reload_ok.get()),
        ("reload_failed", s.reload_failed.get()),
        ("proto_torn", s.proto_torn.get()),
        ("proto_malformed", s.proto_malformed.get()),
    ];

    // Counter conservation, checked while the engine is still live.
    assert_eq!(
        s.degraded_total(),
        s.degraded_partial.get() + s.degraded_stale.get() + s.degraded_unavailable.get()
    );
    assert_eq!(
        s.reload_ok.get() + s.reload_failed.get(),
        RELOAD_AT.len() as u64,
        "every reload accounted for exactly once"
    );

    server.stop();
    std::fs::remove_dir_all(&dir).ok();
    (transcript, counters)
}

#[test]
fn same_seed_same_faults_same_responses() {
    let (t1, c1) = run_scenario();
    let (t2, c2) = run_scenario();

    assert_eq!(t1.len(), REQUESTS);
    for (i, (a, b)) in t1.iter().zip(&t2).enumerate() {
        assert_eq!(a, b, "request {i}: transcripts diverge across runs");
    }
    for ((name, a), (_, b)) in c1.iter().zip(&c2) {
        assert_eq!(a, b, "counter {name} diverges across runs");
    }

    // Every enabled fault class left a footprint. These are exact-seed
    // properties: if the schedule shifts, re-pin CHAOS_SEED.
    let get = |name: &str| c1.iter().find(|(n, _)| *n == name).unwrap().1;
    assert!(
        get("worker_panics") > 0,
        "worker-panic class never fired: {c1:?}"
    );
    assert!(
        get("shard_retried") > 0,
        "no shard retries despite stalls/panics: {c1:?}"
    );
    assert!(get("proto_torn") > 0, "torn read/write never fired: {c1:?}");
    assert!(
        get("degraded_partial") + get("degraded_stale") + get("degraded_unavailable") > 0,
        "no degraded responses despite forced expiries/failures: {c1:?}"
    );
    assert!(get("reload_ok") > 0, "all reloads failed: {c1:?}");
    assert!(
        get("reload_failed") > 0,
        "reload-failure class never fired: {c1:?}"
    );
    assert!(
        get("breaker_opens") > 0,
        "breaker never opened under sustained shard failures: {c1:?}"
    );
}

#[test]
fn chaos_free_engine_is_fault_free() {
    // Control: the same workload with chaos disabled produces zero
    // resilience activity — injections are the only fault source.
    let engine = Arc::new(
        Engine::new(
            make_snapshot(9),
            EngineConfig {
                chaos: None,
                ..engine_config()
            },
        )
        .expect("valid snapshot"),
    );
    let mut server =
        Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for i in 0..REQUESTS {
        let user = (i % 12) as u32;
        writer
            .write_all(
                format!("{{\"op\":\"topk\",\"user\":{user},\"domain\":\"a\",\"k\":5}}\n")
                    .as_bytes(),
            )
            .unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        let v = Json::parse(resp.trim()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "request {i}");
        assert!(v.get("degraded").is_none(), "request {i} degraded: {resp}");
    }
    let s = engine.stats();
    assert_eq!(s.worker_panics.get(), 0);
    assert_eq!(s.shard_failures.get(), 0);
    assert_eq!(s.breaker_opens.get(), 0);
    assert_eq!(s.degraded_total(), 0);
    assert_eq!(s.proto_torn.get(), 0);
    server.stop();
}
