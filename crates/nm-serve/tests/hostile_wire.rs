//! Seeded fuzz-lite for the wire protocol: truncated, oversized,
//! type-confused, and binary-garbage frames must each produce a
//! structured error (machine-readable `code`, counted in stats) — no
//! panic, no silent drop — and the server must still answer a valid
//! request afterwards.

use nm_serve::{
    DomainSnapshot, Engine, EngineConfig, HeadKind, Json, Server, ServerConfig, Snapshot,
};
use nm_tensor::{Tensor, TensorRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// splitmix64 — the suite's only randomness, fully determined by seed.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn make_server() -> (Arc<Engine>, Server) {
    let mut rng = TensorRng::seed_from(7);
    let mk = |rng: &mut TensorRng| DomainSnapshot {
        users: Tensor::randn(16, 4, 1.0, rng),
        items: Tensor::randn(60, 4, 1.0, rng),
        head: HeadKind::Dot,
    };
    let snap = Snapshot {
        model: "fuzz".into(),
        domains: [mk(&mut rng), mk(&mut rng)],
    };
    let engine = Arc::new(
        Engine::new(
            snap,
            EngineConfig {
                n_workers: 2,
                ..Default::default()
            },
        )
        .expect("valid test snapshot"),
    );
    let server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            max_frame_bytes: 512,
            ..Default::default()
        },
    )
    .expect("server starts");
    (engine, server)
}

const VALID: &str = r#"{"op":"topk","user":3,"domain":"a","k":5}"#;

/// Builds the i-th hostile (or control) frame, deterministically.
fn frame(seed: u64, i: u64) -> Vec<u8> {
    let r = mix(seed.wrapping_add(i));
    match r % 5 {
        // truncated valid request (arbitrary prefix), newline intact
        0 => {
            let cut = 1 + (r >> 8) as usize % (VALID.len() - 1);
            let mut f = VALID.as_bytes()[..cut].to_vec();
            f.push(b'\n');
            f
        }
        // oversized: blows past max_frame_bytes before its newline
        1 => {
            let mut f = vec![b'x'; 600 + (r >> 8) as usize % 400];
            f.push(b'\n');
            f
        }
        // type-confused: right keys, wrong JSON types
        2 => format!(
            "{{\"op\":\"topk\",\"user\":\"u{}\",\"domain\":{},\"k\":[{}]}}\n",
            r % 100,
            r % 9,
            r % 7
        )
        .into_bytes(),
        // binary garbage, newline-terminated (often invalid UTF-8)
        3 => {
            let mut f: Vec<u8> = (0..16).map(|j| (r >> (j % 8)) as u8 | 0x80).collect();
            f.push(b'\n');
            f
        }
        // control: a valid request keeps the loop honest
        _ => {
            let mut f = VALID.as_bytes().to_vec();
            f.push(b'\n');
            f
        }
    }
}

#[test]
fn hostile_frames_never_panic_and_always_answer() {
    let (engine, mut server) = make_server();
    let addr = server.local_addr();
    let stats = engine.stats();
    const FRAMES: u64 = 120;
    const SEED: u64 = 0xF0CC;

    let mut structured_errors = 0u64;
    let mut ok_answers = 0u64;
    for i in 0..FRAMES {
        let f = frame(SEED, i);
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(&f).expect("send frame");
        writer.flush().unwrap();
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("reply within timeout");
        assert!(n > 0, "frame {i}: silent drop (no reply before close)");
        let v = Json::parse(line.trim())
            .unwrap_or_else(|e| panic!("frame {i}: corrupt reply {line:?}: {e}"));
        match v.get("ok").and_then(|o| o.as_bool()) {
            Some(true) => {
                assert_eq!(
                    v.get("items").unwrap().as_arr().unwrap().len(),
                    5,
                    "frame {i}: control answer wrong"
                );
                ok_answers += 1;
            }
            Some(false) => {
                // structured: both a message and a machine-readable code
                assert!(
                    v.get("error").and_then(|e| e.as_str()).is_some(),
                    "frame {i}: error reply without message: {line}"
                );
                assert!(
                    v.get("code").and_then(|c| c.as_str()).is_some(),
                    "frame {i}: protocol error without code: {line}"
                );
                structured_errors += 1;
            }
            None => panic!("frame {i}: reply without ok field: {line}"),
        }
    }

    // every class fired, every frame was answered
    assert_eq!(structured_errors + ok_answers, FRAMES);
    assert!(ok_answers > 0, "no control frames in the schedule");
    assert!(stats.proto_oversized.get() > 0, "oversized class never hit");
    assert!(stats.proto_malformed.get() > 0, "malformed class never hit");
    assert_eq!(
        stats.proto_malformed.get() + stats.proto_oversized.get(),
        structured_errors,
        "every structured error is counted exactly once"
    );

    // the server is still healthy: a valid request round-trips
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(VALID.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    server.stop();
}

#[test]
fn fuzz_schedule_is_reproducible() {
    // The same seed must generate byte-identical frames — the property
    // that makes a fuzz failure replayable from its seed alone.
    for i in 0..50 {
        assert_eq!(frame(1234, i), frame(1234, i), "frame {i} not stable");
    }
    assert_ne!(frame(1, 0), frame(2, 0), "seed must matter");
}
