//! Multi-threaded server smoke test: N concurrent clients hammer one
//! server over real TCP and every response must come back intact, in
//! order, and consistent across clients.

use nm_serve::{
    DomainSnapshot, Engine, EngineConfig, HeadKind, Json, Server, ServerConfig, Snapshot,
};
use nm_tensor::{Tensor, TensorRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

fn make_snapshot(seed: u64) -> Snapshot {
    let mut rng = TensorRng::seed_from(seed);
    let mk = |rng: &mut TensorRng| DomainSnapshot {
        users: Tensor::randn(32, 8, 1.0, rng),
        items: Tensor::randn(300, 8, 1.0, rng),
        head: HeadKind::Dot,
    };
    Snapshot {
        model: "smoke".into(),
        domains: [mk(&mut rng), mk(&mut rng)],
    }
}

#[test]
fn concurrent_clients_no_lost_or_corrupt_responses() {
    let engine = Arc::new(
        Engine::new(
            make_snapshot(42),
            EngineConfig {
                n_workers: 4,
                shard_items: 64,
                ..Default::default()
            },
        )
        .expect("valid test snapshot"),
    );
    let mut server =
        Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 25;

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut responses = Vec::new();
                for r in 0..REQUESTS_PER_CLIENT {
                    // Deliberately overlapping users across clients so the
                    // cache and the batcher both get exercised.
                    let user = ((c + r) % 10) as u32;
                    let domain = if r % 2 == 0 { "a" } else { "b" };
                    writer
                        .write_all(
                            format!(
                                "{{\"op\":\"topk\",\"user\":{user},\"domain\":\"{domain}\",\"k\":7}}\n"
                            )
                            .as_bytes(),
                        )
                        .unwrap();
                    writer.flush().unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    assert!(!line.trim().is_empty(), "lost response");
                    let v = Json::parse(line.trim()).expect("corrupt response");
                    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
                    assert_eq!(v.get("user").unwrap().as_u64(), Some(user as u64));
                    let items = v.get("items").unwrap().as_arr().unwrap();
                    assert_eq!(items.len(), 7);
                    responses.push((user, domain.to_string(), line.trim().to_string()));
                }
                responses
            })
        })
        .collect();

    let mut all: Vec<(u32, String, String)> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    assert_eq!(all.len(), CLIENTS * REQUESTS_PER_CLIENT, "lost responses");

    // Same (user, domain) query ⇒ byte-identical answer regardless of
    // which client asked, when, or whether it was cached.
    use std::collections::HashMap;
    let mut canonical: HashMap<(u32, String), String> = HashMap::new();
    for (user, domain, line) in &all {
        // The "cached" field legitimately differs between first and
        // repeat answers; compare everything else.
        let v = Json::parse(line).unwrap();
        let key_fields = format!(
            "{}|{}",
            v.get("items").unwrap().encode(),
            v.get("scores").unwrap().encode()
        );
        match canonical.entry((*user, domain.clone())) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(key_fields);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                assert_eq!(
                    e.get(),
                    &key_fields,
                    "divergent answers for user {user} domain {domain}"
                );
            }
        }
    }

    // Repeated queries must have produced cache hits.
    let stats = engine.stats();
    let hits = stats.cache_hits.get();
    assert!(hits > 0, "expected cache hits on repeated queries");

    // And the stats endpoint agrees the traffic happened.
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"op\":\"stats\"}\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    let s = v.get("stats").unwrap();
    assert!(s.get("requests").unwrap().as_f64().unwrap() >= (CLIENTS * REQUESTS_PER_CLIENT) as f64);
    assert!(s.get("cache_hits").unwrap().as_f64().unwrap() > 0.0);
    assert!(s.get("latency_us").unwrap().get("p99").is_some());

    // The obs endpoint exposes the full unified metrics registry over
    // the same wire: dotted counter names and histogram snapshots.
    writer.write_all(b"{\"op\":\"obs\"}\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
    let obs = v.get("obs").unwrap();
    let counters = obs.get("counters").unwrap();
    assert!(counters.get("serve.requests").unwrap().as_f64().unwrap() > 0.0);
    assert!(counters.get("serve.cache.hits").unwrap().as_f64().unwrap() > 0.0);
    let hist = obs
        .get("histograms")
        .unwrap()
        .get("serve.latency_us")
        .unwrap();
    assert!(hist.get("count").unwrap().as_f64().unwrap() > 0.0);
    assert!(hist.get("overflow_count").is_some());

    // The trace endpoint returns slowest-request exemplars as an
    // embedded schema-v1 trace that must pass the strict parser and
    // the structural validator — the same bar `nmcdr obs validate`
    // applies to training traces.
    writer.write_all(b"{\"op\":\"trace\"}\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
    let n_exemplars = v.get("exemplars").unwrap().as_u64().unwrap();
    assert!(n_exemplars > 0, "traffic must have produced exemplars");
    let text = v.get("trace").unwrap().as_str().unwrap();
    let recs = nm_obs::parse::parse_trace(text).expect("exemplar trace parses strictly");
    let summary = nm_obs::report::validate(&recs).expect("exemplar trace validates");
    assert_eq!(
        summary.events, n_exemplars,
        "one exemplar event per request"
    );
    // every exemplar contributes a serve.request root span, and the
    // folded flamegraph view conserves the roots' inclusive time
    let folded = nm_obs::flame::fold(&recs);
    let root_total: u64 = recs
        .iter()
        .filter_map(|r| match r {
            nm_obs::TraceRecord::Span { name, dur_us, .. } if name == "serve.request" => {
                Some(*dur_us)
            }
            _ => None,
        })
        .sum();
    assert_eq!(nm_obs::flame::total_us(&folded), root_total);

    server.stop();
}

#[test]
fn reload_over_wire_swaps_answers() {
    let engine = Arc::new(
        Engine::new(make_snapshot(1), EngineConfig::default()).expect("valid test snapshot"),
    );
    let mut server =
        Server::start(Arc::clone(&engine), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let dir = std::env::temp_dir().join(format!("nm_serve_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("next.nmss");
    make_snapshot(2).save_to_file(&path).unwrap();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ask = |line: String| -> Json {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        Json::parse(resp.trim()).unwrap()
    };

    let before = ask(r#"{"op":"topk","user":0,"domain":"a","k":5}"#.into());
    let reload = ask(format!(r#"{{"op":"reload","path":"{}"}}"#, path.display()));
    assert_eq!(
        reload.get("ok").unwrap().as_bool(),
        Some(true),
        "{reload:?}"
    );
    assert_eq!(reload.get("epoch").unwrap().as_u64(), Some(1));
    let after = ask(r#"{"op":"topk","user":0,"domain":"a","k":5}"#.into());
    assert_eq!(after.get("cached").unwrap().as_bool(), Some(false));
    assert_ne!(
        before.get("scores").unwrap(),
        after.get("scores").unwrap(),
        "reload should change the answers"
    );

    std::fs::remove_dir_all(&dir).ok();
    server.stop();
}
