//! Leave-one-out ranking evaluation harness.

use crate::metrics;
use nm_data::negative::EvalCandidates;

/// A model-agnostic scorer: given parallel `(user, item)` arrays, return
/// an affinity score per pair. Implemented by every model in
/// `nm-models` and `nmcdr-core` via their frozen embeddings.
pub trait Scorer {
    fn score(&self, users: &[u32], items: &[u32]) -> Vec<f32>;
}

impl<F> Scorer for F
where
    F: Fn(&[u32], &[u32]) -> Vec<f32>,
{
    fn score(&self, users: &[u32], items: &[u32]) -> Vec<f32> {
        self(users, items)
    }
}

/// Total order for ranked `(item, score)` pairs: score descending, then
/// item id ascending. Breaking score ties by id makes every ranking in
/// the workspace — offline audits here and the serving engine's top-K
/// heap — deterministic and mutually comparable.
pub fn rank_order(a: &(u32, f32), b: &(u32, f32)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.0.cmp(&b.0))
}

/// The top `k` of `(item, score)` pairs under [`rank_order`], sorted
/// best-first. NaN scores sort like ties (broken by id) rather than
/// poisoning the order.
pub fn top_k(pairs: &[(u32, f32)], k: usize) -> Vec<(u32, f32)> {
    let mut v = pairs.to_vec();
    v.sort_by(rank_order);
    v.truncate(k);
    v
}

/// Aggregated leave-one-out ranking results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingSummary {
    /// Mean HR@k over test users (percentage points 0–100).
    pub hr: f64,
    /// Mean NDCG@k over test users (percentage points 0–100).
    pub ndcg: f64,
    /// Mean reciprocal rank (0–1).
    pub mrr: f64,
    /// Mean AUC (0–1).
    pub auc: f64,
    /// Number of evaluated users.
    pub n_users: usize,
}

impl RankingSummary {
    /// An empty summary (no test users).
    pub fn empty() -> Self {
        Self {
            hr: 0.0,
            ndcg: 0.0,
            mrr: 0.0,
            auc: 0.0,
            n_users: 0,
        }
    }
}

/// Scores every candidate list with `scorer` and averages HR@k / NDCG@k
/// / MRR / AUC. Batch-scores one user's candidates at a time (the lists
/// are only 200 long).
pub fn evaluate_ranking(
    scorer: &dyn Scorer,
    candidates: &[EvalCandidates],
    k: usize,
) -> RankingSummary {
    if candidates.is_empty() {
        return RankingSummary::empty();
    }
    let (mut hr, mut ndcg, mut mrr, mut auc) = (0.0, 0.0, 0.0, 0.0);
    for c in candidates {
        let users = vec![c.user; c.items.len()];
        let scores = scorer.score(&users, &c.items);
        assert_eq!(
            scores.len(),
            c.items.len(),
            "scorer returned {} scores for {} items",
            scores.len(),
            c.items.len()
        );
        hr += metrics::hit_rate_at(&scores, k);
        ndcg += metrics::ndcg_at(&scores, k);
        mrr += metrics::mrr(&scores);
        auc += metrics::auc(&scores);
    }
    let n = candidates.len() as f64;
    RankingSummary {
        hr: 100.0 * hr / n,
        ndcg: 100.0 * ndcg / n,
        mrr: mrr / n,
        auc: auc / n,
        n_users: candidates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<EvalCandidates> {
        vec![
            EvalCandidates {
                user: 0,
                items: vec![5, 1, 2, 3],
            },
            EvalCandidates {
                user: 1,
                items: vec![7, 8, 9, 10],
            },
        ]
    }

    #[test]
    fn oracle_scorer_gets_perfect_metrics() {
        // scores item 5 and 7 (the positives) highest
        let scorer = |_u: &[u32], items: &[u32]| -> Vec<f32> {
            items
                .iter()
                .map(|&i| if i == 5 || i == 7 { 1.0 } else { 0.0 })
                .collect()
        };
        let s = evaluate_ranking(&scorer, &candidates(), 10);
        assert_eq!(s.hr, 100.0);
        assert_eq!(s.ndcg, 100.0);
        assert_eq!(s.mrr, 1.0);
        assert_eq!(s.auc, 1.0);
        assert_eq!(s.n_users, 2);
    }

    #[test]
    fn adversarial_scorer_gets_zero_ndcg_at_1() {
        let scorer = |_u: &[u32], items: &[u32]| -> Vec<f32> {
            items
                .iter()
                .map(|&i| if i == 5 || i == 7 { -1.0 } else { 1.0 })
                .collect()
        };
        let s = evaluate_ranking(&scorer, &candidates(), 1);
        assert_eq!(s.hr, 0.0);
        assert_eq!(s.auc, 0.0);
    }

    #[test]
    fn random_scorer_hr_near_k_over_n() {
        // With 200 candidates and k=10, a random scorer hits ~5%.
        let cands: Vec<EvalCandidates> = (0..400)
            .map(|u| EvalCandidates {
                user: u,
                items: (0..200).map(|i| (u * 200 + i) % 1000).collect(),
            })
            .collect();
        let scorer = |users: &[u32], items: &[u32]| -> Vec<f32> {
            users
                .iter()
                .zip(items)
                .map(|(&u, &i)| {
                    // deterministic pseudo-random hash
                    let h = (u.wrapping_mul(2654435761)).wrapping_add(i.wrapping_mul(40503));
                    (h % 10007) as f32
                })
                .collect()
        };
        let s = evaluate_ranking(&scorer, &cands, 10);
        assert!(s.hr > 1.5 && s.hr < 10.0, "random HR@10 was {}", s.hr);
        assert!((s.auc - 0.5).abs() < 0.08, "random AUC was {}", s.auc);
    }

    #[test]
    fn empty_candidates_give_empty_summary() {
        let scorer = |_: &[u32], items: &[u32]| vec![0.0; items.len()];
        let s = evaluate_ranking(&scorer, &[], 10);
        assert_eq!(s.n_users, 0);
    }

    #[test]
    fn top_k_breaks_ties_by_item_id() {
        let pairs = vec![(9, 1.0), (2, 2.0), (7, 1.0), (1, 1.0), (5, 0.5)];
        let top = top_k(&pairs, 4);
        assert_eq!(top, vec![(2, 2.0), (1, 1.0), (7, 1.0), (9, 1.0)]);
    }

    #[test]
    fn top_k_handles_nan_and_short_input() {
        let pairs = vec![(3, f32::NAN), (1, 1.0), (2, f32::NAN)];
        let top = top_k(&pairs, 10);
        assert_eq!(top.len(), 3);
        // the finite score and both NaNs are all present; ids are unique
        assert!(top.iter().any(|&(i, _)| i == 1));
    }

    #[test]
    fn rank_order_is_total_and_deterministic() {
        let mut a = vec![(4, 0.3), (2, 0.3), (9, 0.9), (1, 0.3)];
        let mut b = a.clone();
        b.reverse(); // different starting permutation, same final order
        a.sort_by(rank_order);
        b.sort_by(rank_order);
        assert_eq!(a, b);
        assert_eq!(a[0].0, 9);
        assert_eq!(&a[1..], &[(1, 0.3), (2, 0.3), (4, 0.3)]);
    }
}
