//! Embedding projection and cluster-separation statistics (Fig. 5).
//!
//! The paper shows t-SNE plots of head vs. tail user embeddings after
//! each NMCDR stage, arguing the tail distribution progressively aligns
//! with the head distribution. We reproduce the *claim* quantitatively:
//! PCA-project embeddings to 2-D for plotting, and compute a separation
//! score (normalized centroid distance) that should *decrease* stage by
//! stage. See DESIGN.md, "Substitutions".

use nm_tensor::Tensor;

/// A 2-D PCA projection of an `N x D` embedding matrix.
#[derive(Debug, Clone)]
pub struct Projection2D {
    /// `N` (x, y) coordinates.
    pub coords: Vec<(f32, f32)>,
    /// Fraction of variance captured by each of the two components.
    pub explained: (f32, f32),
}

/// Power iteration for the dominant eigenvector of the covariance of
/// centered data `x` (`N x D`). `deflate` removes an already-found
/// component first.
fn principal_component(x: &Tensor, deflate: Option<&[f32]>, iters: usize) -> (Vec<f32>, f32) {
    let (n, d) = x.shape();
    let mut v = vec![1.0f32; d];
    let norm = (d as f32).sqrt();
    for vi in &mut v {
        *vi /= norm;
    }
    let mut eigval = 0.0f32;
    for _ in 0..iters {
        // w = X^T (X v) / n  (covariance-vector product without forming DxD)
        let mut xv = vec![0.0f32; n];
        for (i, xvi) in xv.iter_mut().enumerate() {
            let row = x.row_slice(i);
            *xvi = row.iter().zip(&v).map(|(a, b)| a * b).sum();
        }
        let mut w = vec![0.0f32; d];
        for (i, &xvi) in xv.iter().enumerate() {
            let row = x.row_slice(i);
            for (wj, &rj) in w.iter_mut().zip(row) {
                *wj += rj * xvi;
            }
        }
        for wj in &mut w {
            *wj /= n as f32;
        }
        if let Some(prev) = deflate {
            let proj: f32 = w.iter().zip(prev).map(|(a, b)| a * b).sum();
            for (wj, &pj) in w.iter_mut().zip(prev) {
                *wj -= proj * pj;
            }
        }
        let nw: f32 = w.iter().map(|a| a * a).sum::<f32>().sqrt();
        if nw < 1e-12 {
            break;
        }
        eigval = nw;
        for (vi, wj) in v.iter_mut().zip(&w) {
            *vi = wj / nw;
        }
    }
    (v, eigval)
}

/// PCA-projects embeddings to 2-D.
pub fn pca_2d(embeddings: &Tensor) -> Projection2D {
    let (n, d) = embeddings.shape();
    assert!(n >= 2 && d >= 2, "pca_2d needs at least 2x2 data");
    // center
    let mean = embeddings.mean_axis(nm_tensor::Axis::Rows);
    let centered = embeddings.sub(&mean);
    let total_var: f32 = centered.sum_squares() / n as f32;
    let (p1, e1) = principal_component(&centered, None, 50);
    let (p2, e2) = principal_component(&centered, Some(&p1), 50);
    let coords = (0..n)
        .map(|i| {
            let row = centered.row_slice(i);
            let x: f32 = row.iter().zip(&p1).map(|(a, b)| a * b).sum();
            let y: f32 = row.iter().zip(&p2).map(|(a, b)| a * b).sum();
            (x, y)
        })
        .collect();
    let tv = total_var.max(1e-12);
    Projection2D {
        coords,
        explained: (e1 / tv, e2 / tv),
    }
}

/// Head/tail separation statistics of an embedding matrix.
#[derive(Debug, Clone, Copy)]
pub struct SeparationStats {
    /// Euclidean distance between head and tail centroids.
    pub centroid_distance: f32,
    /// Centroid distance divided by the pooled within-group RMS radius —
    /// the scale-free separation score Fig. 5 is about (lower = more
    /// aligned head/tail distributions).
    pub normalized_separation: f32,
    pub n_head: usize,
    pub n_tail: usize,
}

/// Computes head/tail separation of `embeddings` given a head-user mask.
pub fn separation(embeddings: &Tensor, is_head: &[bool]) -> SeparationStats {
    let (n, d) = embeddings.shape();
    assert_eq!(n, is_head.len(), "mask length mismatch");
    let n_head = is_head.iter().filter(|&&h| h).count();
    let n_tail = n - n_head;
    assert!(n_head > 0 && n_tail > 0, "need both head and tail users");
    let mut c_head = vec![0.0f32; d];
    let mut c_tail = vec![0.0f32; d];
    for (i, &head) in is_head.iter().enumerate() {
        let row = embeddings.row_slice(i);
        let c = if head { &mut c_head } else { &mut c_tail };
        for (cj, &rj) in c.iter_mut().zip(row) {
            *cj += rj;
        }
    }
    for cj in &mut c_head {
        *cj /= n_head as f32;
    }
    for cj in &mut c_tail {
        *cj /= n_tail as f32;
    }
    let centroid_distance: f32 = c_head
        .iter()
        .zip(&c_tail)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    // pooled within-group variance
    let mut ssq = 0.0f32;
    for (i, &head) in is_head.iter().enumerate() {
        let row = embeddings.row_slice(i);
        let c = if head { &c_head } else { &c_tail };
        ssq += row
            .iter()
            .zip(c)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>();
    }
    let rms = (ssq / n as f32).sqrt().max(1e-12);
    SeparationStats {
        centroid_distance,
        normalized_separation: centroid_distance / rms,
        n_head,
        n_tail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_tensor::TensorRng;

    #[test]
    fn pca_recovers_dominant_direction() {
        // points spread along (1,1,0,0)/sqrt(2) with small noise
        let mut rng = TensorRng::seed_from(3);
        let n = 200;
        let mut x = Tensor::zeros(n, 4);
        for i in 0..n {
            let t = rng.normal() * 5.0;
            let row = x.row_slice_mut(i);
            row[0] = t + rng.normal() * 0.1;
            row[1] = t + rng.normal() * 0.1;
            row[2] = rng.normal() * 0.1;
            row[3] = rng.normal() * 0.1;
        }
        let p = pca_2d(&x);
        assert!(p.explained.0 > 0.9, "explained {:?}", p.explained);
        // x coordinate should correlate with the latent t (== row[0] roughly)
        let corr: f32 = {
            let xs: Vec<f32> = p.coords.iter().map(|c| c.0).collect();
            let ts: Vec<f32> = (0..n).map(|i| x.get(i, 0)).collect();
            let mx = xs.iter().sum::<f32>() / n as f32;
            let mt = ts.iter().sum::<f32>() / n as f32;
            let cov: f32 = xs.iter().zip(&ts).map(|(a, b)| (a - mx) * (b - mt)).sum();
            let vx: f32 = xs.iter().map(|a| (a - mx) * (a - mx)).sum();
            let vt: f32 = ts.iter().map(|b| (b - mt) * (b - mt)).sum();
            (cov / (vx.sqrt() * vt.sqrt())).abs()
        };
        assert!(corr > 0.95, "corr {corr}");
    }

    #[test]
    fn separation_detects_split_clusters() {
        let mut rng = TensorRng::seed_from(5);
        let n = 100;
        let mut x = Tensor::zeros(n, 3);
        let mut mask = vec![false; n];
        for i in 0..n {
            let head = i < 40;
            mask[i] = head;
            let offset = if head { 5.0 } else { -5.0 };
            for j in 0..3 {
                x.set(i, j, offset + rng.normal());
            }
        }
        let s = separation(&x, &mask);
        assert!(s.normalized_separation > 3.0, "sep {s:?}");
        assert_eq!(s.n_head, 40);

        // overlapping clusters => low separation
        let mut y = Tensor::zeros(n, 3);
        for i in 0..n {
            for j in 0..3 {
                y.set(i, j, rng.normal());
            }
        }
        let s2 = separation(&y, &mask);
        assert!(s2.normalized_separation < 1.0, "sep {s2:?}");
        assert!(s2.normalized_separation < s.normalized_separation);
    }

    #[test]
    #[should_panic(expected = "both head and tail")]
    fn separation_needs_both_groups() {
        let x = Tensor::zeros(3, 2);
        let _ = separation(&x, &[true, true, true]);
    }
}
