//! # nm-eval
//!
//! Evaluation machinery for the NMCDR reproduction:
//!
//! * [`metrics`] — HR@K, NDCG@K, MRR, AUC for leave-one-out ranking
//!   (1 positive vs. N sampled negatives, the paper's §III-A-2);
//! * [`harness`] — drives a scorer over [`nm_data::negative::EvalCandidates`]
//!   and aggregates per-user metrics;
//! * [`projection`] — PCA 2-D projection plus head/tail
//!   cluster-separation statistics (the quantitative stand-in for the
//!   paper's t-SNE Fig. 5 — see DESIGN.md);
//! * [`abtest`] — a simulated online serving environment with hidden
//!   ground-truth conversion probabilities, reproducing the shape of the
//!   paper's online A/B test (Tables VII–VIII).

pub mod abtest;
pub mod harness;
pub mod metrics;
pub mod projection;

pub use harness::{evaluate_ranking, rank_order, top_k, RankingSummary, Scorer};
pub use metrics::{auc, hit_rate_at, mrr, ndcg_at, rank_of_first};
