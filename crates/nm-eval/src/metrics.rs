//! Ranking metrics over candidate score lists.
//!
//! Convention: `scores[0]` belongs to the ground-truth positive, the
//! rest to sampled negatives (matching
//! [`nm_data::negative::EvalCandidates`]). The positive's rank counts
//! items scoring *strictly higher* (ties resolve in the positive's
//! favour — the convention of the NeuMF/NCF reference evaluation the
//! paper follows).

/// 1-based rank of `scores[0]` among all scores.
///
/// # Panics
/// If `scores` is empty.
pub fn rank_of_first(scores: &[f32]) -> usize {
    assert!(!scores.is_empty(), "rank_of_first: empty scores");
    let pos = scores[0];
    1 + scores[1..].iter().filter(|&&s| s > pos).count()
}

/// Hit rate at `k`: 1.0 if the positive ranks within the top `k`.
pub fn hit_rate_at(scores: &[f32], k: usize) -> f64 {
    if rank_of_first(scores) <= k {
        1.0
    } else {
        0.0
    }
}

/// NDCG at `k` for a single positive: `1 / log2(rank + 1)` when the
/// positive is inside the top `k`, else 0.
pub fn ndcg_at(scores: &[f32], k: usize) -> f64 {
    let r = rank_of_first(scores);
    if r <= k {
        1.0 / ((r as f64) + 1.0).log2()
    } else {
        0.0
    }
}

/// Reciprocal rank of the positive.
pub fn mrr(scores: &[f32]) -> f64 {
    1.0 / rank_of_first(scores) as f64
}

/// AUC of the positive against the negatives (ties count half).
pub fn auc(scores: &[f32]) -> f64 {
    assert!(scores.len() > 1, "auc needs at least one negative");
    let pos = scores[0];
    let mut wins = 0.0;
    for &s in &scores[1..] {
        if pos > s {
            wins += 1.0;
        } else if pos == s {
            wins += 0.5;
        }
    }
    wins / (scores.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_when_positive_is_best() {
        assert_eq!(rank_of_first(&[0.9, 0.1, 0.5]), 1);
    }

    #[test]
    fn rank_counts_strictly_greater() {
        assert_eq!(rank_of_first(&[0.5, 0.5, 0.9, 0.1]), 2);
    }

    #[test]
    fn hit_rate_boundary() {
        // rank 10 with k=10 is a hit
        let mut scores = vec![0.0; 200];
        for (i, s) in scores.iter_mut().enumerate().skip(1).take(9) {
            *s = 1.0 + i as f32;
        }
        assert_eq!(rank_of_first(&scores), 10);
        assert_eq!(hit_rate_at(&scores, 10), 1.0);
        // push one more above -> rank 11 -> miss
        scores[40] = 99.0;
        assert_eq!(hit_rate_at(&scores, 10), 0.0);
    }

    #[test]
    fn ndcg_values() {
        assert!((ndcg_at(&[1.0, 0.0], 10) - 1.0).abs() < 1e-12); // rank 1
        let scores = [0.5, 0.9, 0.0];
        // rank 2 => 1/log2(3)
        assert!((ndcg_at(&scores, 10) - 1.0 / 3f64.log2()).abs() < 1e-12);
        assert_eq!(ndcg_at(&scores, 1), 0.0);
    }

    #[test]
    fn mrr_value() {
        assert!((mrr(&[0.5, 0.9, 0.8, 0.1]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_and_worst() {
        assert_eq!(auc(&[1.0, 0.0, 0.5]), 1.0);
        assert_eq!(auc(&[0.0, 1.0, 0.5]), 0.0);
        assert_eq!(auc(&[0.5, 0.5]), 0.5);
    }

    #[test]
    fn ndcg_never_exceeds_hit_rate() {
        for seed in 0..20u32 {
            let scores: Vec<f32> = (0..50)
                .map(|i| ((seed.wrapping_mul(31).wrapping_add(i) % 97) as f32) / 97.0)
                .collect();
            assert!(ndcg_at(&scores, 10) <= hit_rate_at(&scores, 10) + 1e-12);
        }
    }
}
