//! Simulated online A/B testing (Tables VII–VIII).
//!
//! The paper's online experiment ran on MYbank's serving platform —
//! unavailable by definition. This module reproduces its *shape*: a
//! hidden ground-truth conversion model, several policy arms splitting
//! traffic evenly, and CVR as the metric. A better offline ranker should
//! convert more often; the experiment verifies the same ordering the
//! paper reports (Control < MTL baselines < CDR baselines < NMCDR).

use crate::harness::Scorer;
use nm_tensor::rng::{Rng, SeedableRng, StdRng};

/// One simulated serving domain with a hidden conversion model.
pub struct AbDomain<'a> {
    pub name: String,
    pub n_users: usize,
    pub n_items: usize,
    /// Hidden true affinity of `(user, item)` — drives conversions.
    pub affinity: Box<dyn Fn(usize, usize) -> f32 + 'a>,
    /// Logit offset calibrating the base conversion rate.
    pub bias: f32,
    /// Logit slope on affinity.
    pub slope: f32,
}

/// Outcome of one arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmResult {
    pub name: String,
    pub impressions: usize,
    pub conversions: usize,
}

impl ArmResult {
    /// Conversion rate (0–1).
    pub fn cvr(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.conversions as f64 / self.impressions as f64
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    nm_tensor::sigmoid_scalar(x)
}

/// Runs an even-split A/B test: each arm serves `requests_per_arm`
/// requests; per request a random user arrives, the arm ranks a random
/// `slate_size` candidate slate, the top item is shown, and conversion
/// is Bernoulli in the hidden model. Deterministic per `seed`, and every
/// arm sees the *same* request stream (paired comparison, lower
/// variance than the paper's real traffic split).
pub fn run_ab_test(
    domain: &AbDomain<'_>,
    arms: &[(&str, &dyn Scorer)],
    requests_per_arm: usize,
    slate_size: usize,
    seed: u64,
) -> Vec<ArmResult> {
    assert!(slate_size >= 2, "slate needs at least 2 items");
    assert!(domain.n_items >= slate_size, "catalogue smaller than slate");
    let mut results: Vec<ArmResult> = arms
        .iter()
        .map(|(name, _)| ArmResult {
            name: name.to_string(),
            impressions: 0,
            conversions: 0,
        })
        .collect();
    for r in 0..requests_per_arm {
        // One request: same user/slate/conversion-coin for every arm.
        let mut req_rng = StdRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37_79B9));
        let user = req_rng.gen_range(0..domain.n_users) as u32;
        let mut slate: Vec<u32> = Vec::with_capacity(slate_size);
        while slate.len() < slate_size {
            let item = req_rng.gen_range(0..domain.n_items) as u32;
            if !slate.contains(&item) {
                slate.push(item);
            }
        }
        let coin: f32 = req_rng.gen_range(0.0..1.0);
        let users = vec![user; slate.len()];
        for ((_, scorer), res) in arms.iter().zip(results.iter_mut()) {
            let scores = scorer.score(&users, &slate);
            let best = scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .expect("non-empty slate");
            let shown = slate[best] as usize;
            let p = sigmoid(domain.slope * (domain.affinity)(user as usize, shown) + domain.bias);
            res.impressions += 1;
            if coin < p {
                res.conversions += 1;
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_domain() -> AbDomain<'static> {
        AbDomain {
            name: "Toy".into(),
            n_users: 50,
            n_items: 40,
            // affinity favours items whose id is close to user id mod 40
            affinity: Box::new(|u, i| {
                let d = (u % 40) as f32 - i as f32;
                1.0 - (d.abs() / 20.0)
            }),
            bias: -1.0,
            slope: 3.0,
        }
    }

    #[test]
    fn oracle_beats_random_policy() {
        let d = toy_domain();
        let oracle = |users: &[u32], items: &[u32]| -> Vec<f32> {
            users
                .iter()
                .zip(items)
                .map(|(&u, &i)| {
                    let delta = (u % 40) as f32 - i as f32;
                    1.0 - delta.abs() / 20.0
                })
                .collect()
        };
        let random = |users: &[u32], items: &[u32]| -> Vec<f32> {
            users
                .iter()
                .zip(items)
                .map(|(&u, &i)| ((u.wrapping_mul(97).wrapping_add(i * 31)) % 101) as f32)
                .collect()
        };
        let results = run_ab_test(
            &d,
            &[("oracle", &oracle), ("random", &random)],
            3000,
            10,
            42,
        );
        assert!(
            results[0].cvr() > results[1].cvr() + 0.05,
            "oracle {} vs random {}",
            results[0].cvr(),
            results[1].cvr()
        );
    }

    #[test]
    fn arms_see_identical_impression_counts() {
        let d = toy_domain();
        let flat = |_: &[u32], items: &[u32]| vec![0.5; items.len()];
        let r = run_ab_test(&d, &[("a", &flat), ("b", &flat)], 100, 5, 1);
        assert_eq!(r[0].impressions, 100);
        assert_eq!(r[1].impressions, 100);
        // identical policies on a paired stream convert identically
        assert_eq!(r[0].conversions, r[1].conversions);
    }

    #[test]
    fn deterministic_per_seed() {
        let d = toy_domain();
        let flat = |_: &[u32], items: &[u32]| vec![0.5; items.len()];
        let a = run_ab_test(&d, &[("x", &flat)], 200, 5, 9);
        let b = run_ab_test(&d, &[("x", &flat)], 200, 5, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn cvr_of_empty_arm_is_zero() {
        let r = ArmResult {
            name: "e".into(),
            impressions: 0,
            conversions: 0,
        };
        assert_eq!(r.cvr(), 0.0);
    }
}
