//! Finite-difference verification of every op's backward pass.
//!
//! Each test builds a scalar loss through one (or a few) ops and checks
//! the analytic gradient of every input against central differences.

use nm_autograd::{finite_difference_grad, Tape};
use nm_graph::Csr;
use nm_tensor::{Tensor, TensorRng};
use std::rc::Rc;

const H: f32 = 2e-3;
const TOL: f32 = 2e-2;

/// Checks d(loss)/d(x) where `build` maps a leaf var to a scalar loss.
fn check_unary(x: Tensor, build: impl Fn(&mut Tape, nm_autograd::Var) -> nm_autograd::Var) {
    let mut tape = Tape::new();
    let v = tape.leaf(x.clone());
    let loss = build(&mut tape, v);
    tape.backward(loss);
    let analytic = tape.grad(v).expect("missing gradient").clone();

    let numeric = finite_difference_grad(&x, H, |t| {
        let mut tape = Tape::new();
        let v = tape.leaf(t.clone());
        let loss = build(&mut tape, v);
        tape.value(loss).item()
    });
    let diff = analytic.max_abs_diff(&numeric);
    assert!(
        diff < TOL,
        "gradient mismatch: max diff {diff}\nanalytic={analytic:?}\nnumeric={numeric:?}"
    );
}

fn rand_t(r: usize, c: usize, seed: u64) -> Tensor {
    let mut rng = TensorRng::seed_from(seed);
    Tensor::randn(r, c, 0.8, &mut rng)
}

#[test]
fn grad_scale_add_scalar_neg() {
    check_unary(rand_t(2, 3, 1), |t, v| {
        let a = t.scale(v, 2.5);
        let b = t.add_scalar(a, -1.0);
        let c = t.neg(b);
        t.sum_all(c)
    });
}

#[test]
fn grad_add_same_shape_both_sides() {
    let x = rand_t(2, 3, 2);
    let y = rand_t(2, 3, 3);
    // check gradient wrt x
    check_unary(x.clone(), |t, v| {
        let c = t.constant(y.clone());
        let s = t.add(v, c);
        t.mean_all(s)
    });
    // wrt y as the broadcast side (same shape)
    check_unary(y, |t, v| {
        let c = t.constant(x.clone());
        let s = t.add(c, v);
        t.mean_all(s)
    });
}

#[test]
fn grad_add_row_vector_broadcast() {
    let bias = rand_t(1, 4, 4);
    let x = rand_t(3, 4, 5);
    check_unary(bias, |t, v| {
        let c = t.constant(x.clone());
        let s = t.add(c, v);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
}

#[test]
fn grad_mul_col_vector_broadcast() {
    let gate = rand_t(3, 1, 6);
    let x = rand_t(3, 4, 7);
    check_unary(gate, |t, v| {
        let c = t.constant(x.clone());
        let s = t.mul(c, v);
        t.sum_all(s)
    });
}

#[test]
fn grad_sub_scalar_broadcast() {
    let s = rand_t(1, 1, 8);
    let x = rand_t(2, 2, 9);
    check_unary(s, |t, v| {
        let c = t.constant(x.clone());
        let d = t.sub(c, v);
        let sq = t.mul(d, d);
        t.sum_all(sq)
    });
}

#[test]
fn grad_matmul_lhs_and_rhs() {
    let a = rand_t(3, 4, 10);
    let b = rand_t(4, 2, 11);
    check_unary(a.clone(), |t, v| {
        let c = t.constant(b.clone());
        let m = t.matmul(v, c);
        let sq = t.mul(m, m);
        t.sum_all(sq)
    });
    check_unary(b, |t, v| {
        let c = t.constant(a.clone());
        let m = t.matmul(c, v);
        let sq = t.mul(m, m);
        t.sum_all(sq)
    });
}

#[test]
fn grad_relu() {
    // keep values away from the kink
    let mut x = rand_t(3, 3, 12);
    for v in x.data_mut() {
        if v.abs() < 0.05 {
            *v += 0.2;
        }
    }
    check_unary(x, |t, v| {
        let r = t.relu(v);
        t.sum_all(r)
    });
}

#[test]
fn grad_sigmoid_tanh_softplus() {
    check_unary(rand_t(2, 3, 13), |t, v| {
        let s = t.sigmoid(v);
        t.sum_all(s)
    });
    check_unary(rand_t(2, 3, 14), |t, v| {
        let s = t.tanh(v);
        t.sum_all(s)
    });
    check_unary(rand_t(2, 3, 15), |t, v| {
        let s = t.softplus(v);
        t.sum_all(s)
    });
}

#[test]
fn grad_softmax_rows() {
    let x = rand_t(3, 4, 16);
    let w = rand_t(3, 4, 17);
    check_unary(x, |t, v| {
        let s = t.softmax_rows(v);
        let c = t.constant(w.clone());
        let weighted = t.mul(s, c);
        t.sum_all(weighted)
    });
}

#[test]
fn grad_concat_cols_both_sides() {
    let a = rand_t(2, 2, 18);
    let b = rand_t(2, 3, 19);
    let w = rand_t(2, 5, 20);
    check_unary(a.clone(), |t, v| {
        let c = t.constant(b.clone());
        let cat = t.concat_cols(v, c);
        let ww = t.constant(w.clone());
        let m = t.mul(cat, ww);
        t.sum_all(m)
    });
    check_unary(b, |t, v| {
        let c = t.constant(a.clone());
        let cat = t.concat_cols(c, v);
        let ww = t.constant(w.clone());
        let m = t.mul(cat, ww);
        t.sum_all(m)
    });
}

#[test]
fn grad_slice_rows_cols() {
    check_unary(rand_t(4, 3, 21), |t, v| {
        let s = t.slice_rows(v, 1, 3);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
    check_unary(rand_t(3, 5, 22), |t, v| {
        let s = t.slice_cols(v, 2, 4);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
}

#[test]
fn grad_gather_rows_with_duplicates() {
    let idx = Rc::new(vec![0u32, 2, 2, 1]);
    check_unary(rand_t(3, 2, 23), move |t, v| {
        let g = t.gather_rows(v, Rc::clone(&idx));
        let sq = t.mul(g, g);
        t.sum_all(sq)
    });
}

#[test]
fn grad_spmm() {
    let adj = Rc::new(Csr::from_edges(
        3,
        4,
        &[
            (0, 0, 0.5),
            (0, 3, 0.5),
            (1, 1, 1.0),
            (2, 2, 0.3),
            (2, 0, 0.7),
        ],
    ));
    let adj_t = Rc::new(adj.transpose());
    check_unary(rand_t(4, 2, 24), move |t, v| {
        let y = t.spmm(Rc::clone(&adj), Rc::clone(&adj_t), v);
        let sq = t.mul(y, y);
        t.sum_all(sq)
    });
}

#[test]
fn grad_rowwise_dot_both_sides() {
    let a = rand_t(3, 4, 25);
    let b = rand_t(3, 4, 26);
    check_unary(a.clone(), |t, v| {
        let c = t.constant(b.clone());
        let d = t.rowwise_dot(v, c);
        let sq = t.mul(d, d);
        t.sum_all(sq)
    });
    check_unary(b, |t, v| {
        let c = t.constant(a.clone());
        let d = t.rowwise_dot(c, v);
        let sq = t.mul(d, d);
        t.sum_all(sq)
    });
}

#[test]
fn grad_reductions() {
    check_unary(rand_t(2, 3, 27), |t, v| {
        let m = t.mean_all(v);
        let s = t.mul(m, m);
        t.sum_all(s)
    });
    check_unary(rand_t(2, 3, 28), |t, v| {
        let s = t.sum_axis_cols(v); // R x 1
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
    check_unary(rand_t(2, 3, 29), |t, v| t.sum_squares(v));
}

#[test]
fn grad_bce_with_logits() {
    let targets = Rc::new(Tensor::new(2, 3, vec![1., 0., 1., 0., 1., 0.]));
    check_unary(rand_t(2, 3, 30), move |t, v| {
        t.bce_with_logits_mean(v, Rc::clone(&targets))
    });
}

#[test]
fn grad_reshape_repeat_segment() {
    check_unary(rand_t(2, 6, 31), |t, v| {
        let r = t.reshape(v, 4, 3);
        let sq = t.mul(r, r);
        t.sum_all(sq)
    });
    check_unary(rand_t(3, 2, 32), |t, v| {
        let r = t.repeat_rows(v, 4);
        let sq = t.mul(r, r);
        t.sum_all(sq)
    });
    check_unary(rand_t(6, 2, 33), |t, v| {
        let s = t.segment_sum_rows(v, 3);
        let sq = t.mul(s, s);
        t.sum_all(sq)
    });
}

#[test]
fn grad_one_minus_gate_composition() {
    // The Eq. 10 fusion pattern: tanh((1-H) ⊙ a + H ⊙ b) with H = sigmoid(x)
    let a = rand_t(2, 3, 34);
    let b = rand_t(2, 3, 35);
    check_unary(rand_t(2, 3, 36), |t, v| {
        let h = t.sigmoid(v);
        let hm = t.one_minus(h);
        let ca = t.constant(a.clone());
        let cb = t.constant(b.clone());
        let l = t.mul(hm, ca);
        let r = t.mul(h, cb);
        let s = t.add(l, r);
        let y = t.tanh(s);
        t.sum_all(y)
    });
}

#[test]
fn grad_deep_composition_end_to_end() {
    // A miniature NMCDR-style block: spmm -> linear -> relu -> gate -> bce
    let adj = Rc::new(Csr::from_edges(
        3,
        3,
        &[(0, 1, 1.0), (1, 0, 0.5), (1, 2, 0.5), (2, 2, 1.0)],
    ));
    let adj_t = Rc::new(adj.transpose());
    let w = rand_t(2, 2, 37);
    let targets = Rc::new(Tensor::new(3, 1, vec![1., 0., 1.]));
    check_unary(rand_t(3, 2, 38), move |t, v| {
        let agg = t.spmm(Rc::clone(&adj), Rc::clone(&adj_t), v);
        let cw = t.constant(w.clone());
        let lin = t.matmul(agg, cw);
        let act = t.relu(lin);
        let gate = t.sigmoid(act);
        let gated = t.mul(act, gate);
        let score = t.sum_axis_cols(gated);
        t.bce_with_logits_mean(score, Rc::clone(&targets))
    });
}
