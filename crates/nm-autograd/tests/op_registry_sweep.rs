//! Registry-driven gradient sweep.
//!
//! `grad_check.rs` verifies each op where it was written; this suite
//! closes the loop structurally: it walks [`nm_autograd::OP_KINDS`] and
//! demands a finite-difference check for every differentiable kind.
//! Adding an op to the tape without registering a sweep entry here (or
//! explicitly exempting it) fails `registry_is_fully_swept`, and each
//! entry is verified to actually record its claimed op kind on the
//! tape, so a stale entry cannot silently satisfy the registry.

use nm_autograd::{finite_difference_grad, Tape, Var, OP_KINDS};
use nm_graph::Csr;
use nm_tensor::{Tensor, TensorRng};
use std::rc::Rc;

const H: f32 = 2e-3;
const TOL: f32 = 2e-2;

/// Kinds with nothing to sweep: `leaf` has no backward rule of its own.
const EXEMPT: &[&str] = &["leaf"];

type Builder = Box<dyn Fn(&mut Tape, Var) -> Var>;

fn rand_t(r: usize, c: usize, seed: u64) -> Tensor {
    let mut rng = TensorRng::seed_from(seed);
    Tensor::randn(r, c, 0.8, &mut rng)
}

/// Input tensor + loss builder exercising exactly one op kind (plus the
/// minimal scaffolding to reduce it to a scalar).
fn sweep_entry(kind: &str) -> Option<(Tensor, Builder)> {
    let entry: (Tensor, Builder) = match kind {
        "add" => (
            rand_t(1, 4, 101),
            Box::new(|t, v| {
                let c = t.constant(rand_t(3, 4, 102));
                let s = t.add(c, v);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            }),
        ),
        "sub" => (
            rand_t(1, 1, 103),
            Box::new(|t, v| {
                let c = t.constant(rand_t(2, 2, 104));
                let d = t.sub(c, v);
                let sq = t.mul(d, d);
                t.sum_all(sq)
            }),
        ),
        "mul" => (
            rand_t(3, 1, 105),
            Box::new(|t, v| {
                let c = t.constant(rand_t(3, 4, 106));
                let s = t.mul(c, v);
                t.sum_all(s)
            }),
        ),
        "scale" => (
            rand_t(2, 3, 107),
            Box::new(|t, v| {
                let s = t.scale(v, -1.7);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            }),
        ),
        "add_scalar" => (
            rand_t(2, 3, 108),
            Box::new(|t, v| {
                let s = t.add_scalar(v, 0.9);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            }),
        ),
        "neg" => (
            rand_t(2, 3, 109),
            Box::new(|t, v| {
                let n = t.neg(v);
                let sq = t.mul(n, n);
                t.sum_all(sq)
            }),
        ),
        "matmul" => (
            rand_t(3, 4, 110),
            Box::new(|t, v| {
                let c = t.constant(rand_t(4, 2, 111));
                let m = t.matmul(v, c);
                let sq = t.mul(m, m);
                t.sum_all(sq)
            }),
        ),
        "relu" => {
            let mut x = rand_t(3, 3, 112);
            for e in x.data_mut() {
                if e.abs() < 0.05 {
                    *e += 0.2;
                }
            }
            (
                x,
                Box::new(|t, v| {
                    let r = t.relu(v);
                    t.sum_all(r)
                }),
            )
        }
        "sigmoid" => (
            rand_t(2, 3, 113),
            Box::new(|t, v| {
                let s = t.sigmoid(v);
                t.sum_all(s)
            }),
        ),
        "tanh" => (
            rand_t(2, 3, 114),
            Box::new(|t, v| {
                let s = t.tanh(v);
                t.sum_all(s)
            }),
        ),
        "softplus" => (
            rand_t(2, 3, 115),
            Box::new(|t, v| {
                let s = t.softplus(v);
                t.sum_all(s)
            }),
        ),
        "concat_cols" => (
            rand_t(2, 2, 116),
            Box::new(|t, v| {
                let c = t.constant(rand_t(2, 3, 117));
                let cat = t.concat_cols(v, c);
                let sq = t.mul(cat, cat);
                t.sum_all(sq)
            }),
        ),
        "slice_rows" => (
            rand_t(4, 3, 118),
            Box::new(|t, v| {
                let s = t.slice_rows(v, 1, 3);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            }),
        ),
        "slice_cols" => (
            rand_t(3, 5, 119),
            Box::new(|t, v| {
                let s = t.slice_cols(v, 2, 4);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            }),
        ),
        "gather_rows" => (
            rand_t(3, 2, 120),
            Box::new(|t, v| {
                let g = t.gather_rows(v, Rc::new(vec![0, 2, 2, 1]));
                let sq = t.mul(g, g);
                t.sum_all(sq)
            }),
        ),
        "spmm" => (
            rand_t(4, 2, 121),
            Box::new(|t, v| {
                let adj = Rc::new(Csr::from_edges(
                    3,
                    4,
                    &[(0, 0, 0.5), (0, 3, 0.5), (1, 1, 1.0), (2, 2, 0.3)],
                ));
                let adj_t = Rc::new(adj.transpose());
                let y = t.spmm(adj, adj_t, v);
                let sq = t.mul(y, y);
                t.sum_all(sq)
            }),
        ),
        "rowwise_dot" => (
            rand_t(3, 4, 122),
            Box::new(|t, v| {
                let c = t.constant(rand_t(3, 4, 123));
                let d = t.rowwise_dot(v, c);
                let sq = t.mul(d, d);
                t.sum_all(sq)
            }),
        ),
        "sum_all" => (
            rand_t(2, 3, 124),
            Box::new(|t, v| {
                let sq = t.mul(v, v);
                t.sum_all(sq)
            }),
        ),
        "mean_all" => (
            rand_t(2, 3, 125),
            Box::new(|t, v| {
                let m = t.mean_all(v);
                let sq = t.mul(m, m);
                t.sum_all(sq)
            }),
        ),
        "sum_axis_cols" => (
            rand_t(2, 3, 126),
            Box::new(|t, v| {
                let s = t.sum_axis_cols(v);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            }),
        ),
        "softmax_rows" => (
            rand_t(3, 4, 127),
            Box::new(|t, v| {
                let s = t.softmax_rows(v);
                let c = t.constant(rand_t(3, 4, 128));
                let w = t.mul(s, c);
                t.sum_all(w)
            }),
        ),
        "bce_with_logits" => (
            rand_t(2, 3, 129),
            Box::new(|t, v| {
                let targets = Rc::new(Tensor::new(2, 3, vec![1., 0., 1., 0., 1., 0.]));
                t.bce_with_logits_mean(v, targets)
            }),
        ),
        "reshape" => (
            rand_t(2, 6, 130),
            Box::new(|t, v| {
                let r = t.reshape(v, 4, 3);
                let sq = t.mul(r, r);
                t.sum_all(sq)
            }),
        ),
        "repeat_rows" => (
            rand_t(3, 2, 131),
            Box::new(|t, v| {
                let r = t.repeat_rows(v, 4);
                let sq = t.mul(r, r);
                t.sum_all(sq)
            }),
        ),
        "segment_sum_rows" => (
            rand_t(6, 2, 132),
            Box::new(|t, v| {
                let s = t.segment_sum_rows(v, 3);
                let sq = t.mul(s, s);
                t.sum_all(sq)
            }),
        ),
        "sum_squares" => (rand_t(2, 3, 133), Box::new(|t, v| t.sum_squares(v))),
        _ => return None,
    };
    Some(entry)
}

#[test]
fn registry_is_fully_swept() {
    let mut missing = Vec::new();
    for &kind in OP_KINDS {
        if EXEMPT.contains(&kind) {
            continue;
        }
        if sweep_entry(kind).is_none() {
            missing.push(kind);
        }
    }
    assert!(
        missing.is_empty(),
        "ops registered in OP_KINDS without a gradient sweep entry: {missing:?}\n\
         add a builder to sweep_entry() or (if non-differentiable) to EXEMPT"
    );
}

#[test]
fn swept_gradients_match_finite_differences() {
    for &kind in OP_KINDS {
        let Some((x, build)) = sweep_entry(kind) else {
            continue;
        };

        let mut tape = Tape::new();
        let v = tape.leaf(x.clone());
        let loss = build(&mut tape, v);

        // The entry must genuinely record its claimed op kind — a copy-
        // pasted builder for the wrong op would pass gradients but fail
        // here.
        let trace = tape.export_trace();
        assert!(
            trace.iter().any(|n| n.kind == kind),
            "sweep entry for {kind:?} never records that op"
        );

        tape.backward(loss);
        let analytic = tape.grad(v).expect("missing gradient").clone();
        let numeric = finite_difference_grad(&x, H, |t| {
            let mut tape = Tape::new();
            let v = tape.leaf(t.clone());
            let loss = build(&mut tape, v);
            tape.value(loss).item()
        });
        let diff = analytic.max_abs_diff(&numeric);
        assert!(diff < TOL, "{kind}: gradient mismatch, max diff {diff}");
    }
}
