//! Declarative op-trace export.
//!
//! [`crate::Tape::export_trace`] turns a recorded forward pass into a
//! flat list of [`TraceNode`]s — op kind, parent indices, concrete
//! output shape, and whatever metadata a *re-derivation* of the output
//! shape needs. The trace is the input format of `nm-check`'s symbolic
//! shape & graph verifier: the verifier recomputes every node's shape
//! from its parents with independent rules and cross-checks the result,
//! so a broken shape rule in either place is caught before training.
//!
//! The trace is intentionally value-free (shapes and indices only):
//! recording it on a probe-sized model costs microseconds and the
//! output is stable across runs, which is what makes it usable as a
//! static artifact.

use crate::ops::Op;
use crate::tape::Tape;

/// Every op kind a [`Tape`] can record, in declaration order. The
/// op-registry gradient sweep (`tests/op_registry_sweep.rs`) and
/// `nm-check`'s shape-rule table are both keyed by these names; adding
/// an op without extending them fails the respective suites.
pub const OP_KINDS: &[&str] = &[
    "leaf",
    "add",
    "sub",
    "mul",
    "scale",
    "add_scalar",
    "neg",
    "matmul",
    "relu",
    "sigmoid",
    "tanh",
    "softplus",
    "concat_cols",
    "slice_rows",
    "slice_cols",
    "gather_rows",
    "spmm",
    "rowwise_dot",
    "sum_all",
    "mean_all",
    "sum_axis_cols",
    "softmax_rows",
    "bce_with_logits",
    "reshape",
    "repeat_rows",
    "segment_sum_rows",
    "sum_squares",
];

/// Shape-relevant metadata of one traced op, beyond parent shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceMeta {
    /// The op's output shape is fully determined by its parents.
    None,
    /// `slice_rows`/`slice_cols` half-open range.
    Slice { start: usize, end: usize },
    /// `gather_rows`: number of gathered indices and the largest index.
    Gather { len: usize, max_index: usize },
    /// `spmm`: the sparse operand's shape (rows x cols of `adj`).
    Spmm { rows: usize, cols: usize },
    /// `repeat_rows` / `segment_sum_rows` group size.
    Group { k: usize },
    /// `bce_with_logits`: shape of the fixed target tensor.
    Targets { rows: usize, cols: usize },
}

/// One node of an exported op trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Op kind name; one of [`OP_KINDS`].
    pub kind: &'static str,
    /// Parent node indices (must all be `<` this node's index in a
    /// well-formed trace).
    pub parents: Vec<usize>,
    /// Recorded output shape.
    pub rows: usize,
    pub cols: usize,
    /// Whether a gradient can flow into this node.
    pub requires_grad: bool,
    pub meta: TraceMeta,
}

impl TraceNode {
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

impl Tape {
    /// Exports the recorded forward pass as a declarative op trace.
    pub fn export_trace(&self) -> Vec<TraceNode> {
        self.nodes_for_trace()
            .map(|(op, shape, requires_grad)| {
                let (kind, meta) = describe(op);
                let parents = op.parents().iter().flatten().map(|v| v.0).collect();
                TraceNode {
                    kind,
                    parents,
                    rows: shape.0,
                    cols: shape.1,
                    requires_grad,
                    meta,
                }
            })
            .collect()
    }
}

fn describe(op: &Op) -> (&'static str, TraceMeta) {
    match op {
        Op::Leaf { .. } => ("leaf", TraceMeta::None),
        Op::Add(..) => ("add", TraceMeta::None),
        Op::Sub(..) => ("sub", TraceMeta::None),
        Op::Mul(..) => ("mul", TraceMeta::None),
        Op::Scale(..) => ("scale", TraceMeta::None),
        Op::AddScalar(..) => ("add_scalar", TraceMeta::None),
        Op::Neg(..) => ("neg", TraceMeta::None),
        Op::Matmul(..) => ("matmul", TraceMeta::None),
        Op::Relu(..) => ("relu", TraceMeta::None),
        Op::Sigmoid(..) => ("sigmoid", TraceMeta::None),
        Op::Tanh(..) => ("tanh", TraceMeta::None),
        Op::Softplus(..) => ("softplus", TraceMeta::None),
        Op::ConcatCols(..) => ("concat_cols", TraceMeta::None),
        &Op::SliceRows(_, start, end) => ("slice_rows", TraceMeta::Slice { start, end }),
        &Op::SliceCols(_, start, end) => ("slice_cols", TraceMeta::Slice { start, end }),
        Op::GatherRows(_, idx) => (
            "gather_rows",
            TraceMeta::Gather {
                len: idx.len(),
                max_index: idx.iter().copied().max().unwrap_or(0) as usize,
            },
        ),
        // `Op` stores the precomputed transpose; report the forward
        // operand's shape (adj = adj_t^T).
        Op::Spmm(adj_t, _) => (
            "spmm",
            TraceMeta::Spmm {
                rows: adj_t.n_cols(),
                cols: adj_t.n_rows(),
            },
        ),
        Op::RowwiseDot(..) => ("rowwise_dot", TraceMeta::None),
        Op::SumAll(..) => ("sum_all", TraceMeta::None),
        Op::MeanAll(..) => ("mean_all", TraceMeta::None),
        Op::SumAxisCols(..) => ("sum_axis_cols", TraceMeta::None),
        Op::SoftmaxRows(..) => ("softmax_rows", TraceMeta::None),
        Op::BceWithLogits(_, targets) => (
            "bce_with_logits",
            TraceMeta::Targets {
                rows: targets.rows(),
                cols: targets.cols(),
            },
        ),
        Op::Reshape(..) => ("reshape", TraceMeta::None),
        &Op::RepeatRows(_, k) => ("repeat_rows", TraceMeta::Group { k }),
        &Op::SegmentSumRows(_, k) => ("segment_sum_rows", TraceMeta::Group { k }),
        Op::SumSquares(..) => ("sum_squares", TraceMeta::None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_tensor::Tensor;

    #[test]
    fn export_covers_simple_graph() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros(2, 3));
        let c = t.constant(Tensor::zeros(1, 3));
        let s = t.add(x, c);
        let l = t.mean_all(s);
        let trace = t.export_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0].kind, "leaf");
        assert!(trace[0].requires_grad);
        assert_eq!(trace[1].kind, "leaf");
        assert!(!trace[1].requires_grad);
        assert_eq!(trace[2].kind, "add");
        assert_eq!(trace[2].parents, vec![x.0, c.0]);
        assert_eq!(trace[2].shape(), (2, 3));
        assert_eq!(trace[3].kind, "mean_all");
        assert_eq!(trace[l.0].shape(), (1, 1));
    }

    #[test]
    fn meta_captures_shape_relevant_payloads() {
        use std::rc::Rc;
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros(4, 2));
        let g = t.gather_rows(x, Rc::new(vec![3, 0, 3]));
        let r = t.repeat_rows(g, 5);
        let sl = t.slice_rows(r, 1, 9);
        let trace = t.export_trace();
        assert_eq!(
            trace[g.0].meta,
            TraceMeta::Gather {
                len: 3,
                max_index: 3
            }
        );
        assert_eq!(trace[r.0].meta, TraceMeta::Group { k: 5 });
        assert_eq!(trace[sl.0].meta, TraceMeta::Slice { start: 1, end: 9 });
    }

    #[test]
    fn every_exported_kind_is_registered() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros(2, 2));
        let y = t.relu(x);
        let _ = t.sum_all(y);
        for node in t.export_trace() {
            assert!(OP_KINDS.contains(&node.kind), "unregistered {}", node.kind);
        }
    }
}
