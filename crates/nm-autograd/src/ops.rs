//! The tape's operation set.
//!
//! Each variant stores the parent [`Var`]s plus whatever the backward
//! pass needs (broadcast classification, indices, the sparse matrix and
//! its precomputed transpose, …). Backward logic lives in
//! [`crate::tape`] next to the forward constructors so the pair can be
//! reviewed together.

use crate::tape::Var;
use nm_graph::Csr;
use nm_tensor::{Broadcast, Tensor};
use std::rc::Rc;

/// One recorded operation.
pub(crate) enum Op {
    /// Input node; `requires_grad` marks trainable parameters.
    Leaf {
        requires_grad: bool,
    },
    /// `a + b` with `b` broadcast per the stored classification.
    Add(Var, Var, Broadcast),
    /// `a - b` with `b` broadcast.
    Sub(Var, Var, Broadcast),
    /// Hadamard `a ⊙ b` with `b` broadcast.
    Mul(Var, Var, Broadcast),
    /// `a * s`.
    Scale(Var, f32),
    /// `a + s` elementwise.
    AddScalar(Var),
    /// `-a`.
    Neg(Var),
    /// Dense `a @ b`.
    Matmul(Var, Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Softplus(Var),
    /// `[a | b]` horizontal concat.
    ConcatCols(Var, Var),
    /// Copy of rows `[start, end)`.
    SliceRows(Var, usize, usize),
    /// Copy of cols `[start, end)`.
    SliceCols(Var, usize, usize),
    /// Row gather (embedding lookup). Backward scatter-adds.
    GatherRows(Var, Rc<Vec<u32>>),
    /// Sparse-dense product `A @ x`; stores `A^T` so backward is one
    /// more SpMM (the forward product is computed before recording).
    Spmm(Rc<Csr>, Var),
    /// Per-row dot product -> `R x 1`.
    RowwiseDot(Var, Var),
    /// Sum of all elements -> scalar.
    SumAll(Var),
    /// Mean of all elements -> scalar.
    MeanAll(Var),
    /// Row sums -> `R x 1`.
    SumAxisCols(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Fused mean BCE-with-logits against fixed targets -> scalar.
    BceWithLogits(Var, Rc<Tensor>),
    /// Same element count, new shape (backward reshapes to the parent's
    /// stored shape).
    Reshape(Var),
    /// Each row repeated `k` times consecutively (`R -> R*k` rows).
    RepeatRows(Var, usize),
    /// Sum of consecutive groups of `k` rows (`R*k -> R` rows).
    SegmentSumRows(Var, usize),
    /// Sum of squared elements -> scalar (L2 regularization).
    SumSquares(Var),
}

impl Op {
    /// Registry name of this op — one of [`crate::OP_KINDS`]. Cheaper
    /// than `optrace::describe` (no metadata build), for the profiler's
    /// per-op hot path.
    pub(crate) fn kind(&self) -> &'static str {
        use Op::*;
        match self {
            Leaf { .. } => "leaf",
            Add(..) => "add",
            Sub(..) => "sub",
            Mul(..) => "mul",
            Scale(..) => "scale",
            AddScalar(..) => "add_scalar",
            Neg(..) => "neg",
            Matmul(..) => "matmul",
            Relu(..) => "relu",
            Sigmoid(..) => "sigmoid",
            Tanh(..) => "tanh",
            Softplus(..) => "softplus",
            ConcatCols(..) => "concat_cols",
            SliceRows(..) => "slice_rows",
            SliceCols(..) => "slice_cols",
            GatherRows(..) => "gather_rows",
            Spmm(..) => "spmm",
            RowwiseDot(..) => "rowwise_dot",
            SumAll(..) => "sum_all",
            MeanAll(..) => "mean_all",
            SumAxisCols(..) => "sum_axis_cols",
            SoftmaxRows(..) => "softmax_rows",
            BceWithLogits(..) => "bce_with_logits",
            Reshape(..) => "reshape",
            RepeatRows(..) => "repeat_rows",
            SegmentSumRows(..) => "segment_sum_rows",
            SumSquares(..) => "sum_squares",
        }
    }

    /// Parents whose gradients this op can influence.
    pub(crate) fn parents(&self) -> [Option<Var>; 2] {
        use Op::*;
        match *self {
            Leaf { .. } => [None, None],
            Add(a, b, _)
            | Sub(a, b, _)
            | Mul(a, b, _)
            | Matmul(a, b)
            | ConcatCols(a, b)
            | RowwiseDot(a, b) => [Some(a), Some(b)],
            Scale(a, _)
            | AddScalar(a)
            | Neg(a)
            | Relu(a)
            | Sigmoid(a)
            | Tanh(a)
            | Softplus(a)
            | SliceRows(a, _, _)
            | SliceCols(a, _, _)
            | GatherRows(a, _)
            | Spmm(_, a)
            | SumAll(a)
            | MeanAll(a)
            | SumAxisCols(a)
            | SoftmaxRows(a)
            | BceWithLogits(a, _)
            | Reshape(a)
            | RepeatRows(a, _)
            | SegmentSumRows(a, _)
            | SumSquares(a) => [Some(a), None],
        }
    }
}
