//! Finite-difference gradient checking.
//!
//! Used by the op-level gradient tests: build the same scalar loss twice
//! with a perturbed input and compare the analytic gradient against the
//! central difference `(f(x+h) - f(x-h)) / 2h`.

use nm_tensor::Tensor;

/// Computes the finite-difference gradient of `f` at `x` elementwise.
///
/// `f` must be a pure function of its input tensor returning a scalar
/// loss value. `h` around `1e-2`–`1e-3` works well for f32.
pub fn finite_difference_grad(x: &Tensor, h: f32, mut f: impl FnMut(&Tensor) -> f32) -> Tensor {
    let mut grad = Tensor::zeros(x.rows(), x.cols());
    for i in 0..x.len() {
        let mut plus = x.clone();
        plus.data_mut()[i] += h;
        let mut minus = x.clone();
        minus.data_mut()[i] -= h;
        grad.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * h);
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient() {
        // f(x) = sum(x^2), grad = 2x
        let x = Tensor::new(1, 3, vec![1.0, -2.0, 0.5]);
        let g = finite_difference_grad(&x, 1e-3, |t| t.sum_squares());
        let expect = x.scale(2.0);
        assert!(g.max_abs_diff(&expect) < 1e-2);
    }
}
