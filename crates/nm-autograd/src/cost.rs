//! Analytic per-op cost model: FLOPs and bytes moved for every kind in
//! the [`crate::OP_KINDS`] registry.
//!
//! The rules are derived from the op's recorded shapes — the same
//! shapes the op-trace exporter records — so the numbers are exact
//! functions of the workload and bit-identical across same-seed runs.
//! They deliberately count *algorithmic* work (e.g. `2·M·K·N` for a
//! dense matmul, `2·nnz·width` for SpMM) and *compulsory* traffic
//! (operands read once, outputs written once), not cache refills: the
//! quotient `achieved / modeled` is exactly the roofline efficiency the
//! profiler report classifies.
//!
//! `nm-check`'s `profile/op-coverage` rule sweeps [`crate::OP_KINDS`]
//! against [`has_rule`], so an op added to the tape without a cost rule
//! fails CI instead of silently profiling as zero FLOPs.

use std::sync::OnceLock;

/// Shapes feeding one op's cost rule: output plus up to two dense
/// operands (`(0, 0)` when absent), and the sparse operand's `nnz` for
/// `spmm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpDims {
    pub out: (usize, usize),
    pub a: (usize, usize),
    pub b: (usize, usize),
    pub nnz: usize,
}

impl OpDims {
    fn out_n(&self) -> u64 {
        (self.out.0 * self.out.1) as u64
    }
    fn a_n(&self) -> u64 {
        (self.a.0 * self.a.1) as u64
    }
    fn b_n(&self) -> u64 {
        (self.b.0 * self.b.1) as u64
    }
}

/// Modeled forward/backward work of one op instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    pub fwd_flops: u64,
    pub fwd_bytes: u64,
    pub bwd_flops: u64,
    pub bwd_bytes: u64,
}

/// `f32` element size: the only dtype in the workspace.
const S: u64 = 4;

/// CI self-test knob for the differential profile gate: when set, the
/// matmul rule reports doubled forward FLOPs, simulating a cost-model
/// drift that `obs profile --compare` must catch as a strict
/// counter mismatch. Never set outside `scripts/ci.sh`.
fn flops_drift() -> bool {
    static DRIFT: OnceLock<bool> = OnceLock::new();
    *DRIFT.get_or_init(|| std::env::var_os("NMCDR_PROF_FLOPS_DRIFT").is_some())
}

/// The cost rule for `kind`, or `None` for an unregistered kind.
///
/// Every entry of [`crate::OP_KINDS`] must return `Some` — enforced by
/// the `profile/op-coverage` check and the unit sweep below.
pub fn cost_for(kind: &str, d: &OpDims) -> Option<OpCost> {
    let e = d.out_n();
    let ea = d.a_n();
    let eb = d.b_n();
    let c = match kind {
        // Bindings move no data and do no math.
        "leaf" => OpCost::default(),
        // Elementwise binary: one flop per output element; backward
        // copies/reduces per operand (mul also multiplies by the
        // sibling value).
        "add" | "sub" => OpCost {
            fwd_flops: e,
            fwd_bytes: (ea + eb + e) * S,
            bwd_flops: e,
            bwd_bytes: (2 * e + ea + eb) * S,
        },
        "mul" => OpCost {
            fwd_flops: e,
            fwd_bytes: (ea + eb + e) * S,
            bwd_flops: 3 * e,
            bwd_bytes: (3 * e + ea + eb) * S,
        },
        "scale" | "neg" => OpCost {
            fwd_flops: e,
            fwd_bytes: 2 * e * S,
            bwd_flops: e,
            bwd_bytes: 2 * e * S,
        },
        "add_scalar" => OpCost {
            fwd_flops: e,
            fwd_bytes: 2 * e * S,
            bwd_flops: 0,
            bwd_bytes: 2 * e * S,
        },
        // Dense `(M x K) @ (K x N)`: the multiply-add pair per cell;
        // backward is two matmuls of the same volume.
        "matmul" => {
            let (m, n) = (d.out.0 as u64, d.out.1 as u64);
            let k = d.a.1 as u64;
            let fwd = 2 * m * k * n;
            OpCost {
                fwd_flops: if flops_drift() { 2 * fwd } else { fwd },
                fwd_bytes: (m * k + k * n + m * n) * S,
                bwd_flops: 2 * fwd,
                bwd_bytes: 2 * (m * k + k * n + m * n) * S,
            }
        }
        "relu" => OpCost {
            fwd_flops: e,
            fwd_bytes: 2 * e * S,
            bwd_flops: e,
            bwd_bytes: 3 * e * S,
        },
        // Transcendental elementwise: exp-class, budgeted at 4 flops.
        "sigmoid" | "tanh" | "softplus" => OpCost {
            fwd_flops: 4 * e,
            fwd_bytes: 2 * e * S,
            bwd_flops: 3 * e,
            bwd_bytes: 3 * e * S,
        },
        // max, subtract, exp, sum, divide per element.
        "softmax_rows" => OpCost {
            fwd_flops: 5 * e,
            fwd_bytes: 2 * e * S,
            bwd_flops: 4 * e,
            bwd_bytes: 3 * e * S,
        },
        "concat_cols" | "reshape" => OpCost {
            fwd_flops: 0,
            fwd_bytes: 2 * e * S,
            bwd_flops: 0,
            bwd_bytes: 2 * e * S,
        },
        // Backward zero-fills the parent and scatters the slice back.
        "slice_rows" | "slice_cols" => OpCost {
            fwd_flops: 0,
            fwd_bytes: 2 * e * S,
            bwd_flops: e,
            bwd_bytes: (e + ea) * S,
        },
        "gather_rows" => OpCost {
            fwd_flops: 0,
            fwd_bytes: 2 * e * S,
            bwd_flops: e,
            bwd_bytes: (2 * e + ea) * S,
        },
        // CSR `A @ x`: multiply-add per stored entry per output column;
        // each entry is a (f32, u32) pair = 8 bytes. Backward is one
        // SpMM with the transpose — same volume.
        "spmm" => {
            let width = d.out.1 as u64;
            let nnz = d.nnz as u64;
            OpCost {
                fwd_flops: 2 * nnz * width,
                fwd_bytes: nnz * 8 + (ea + e) * S,
                bwd_flops: 2 * nnz * width,
                bwd_bytes: nnz * 8 + (ea + e) * S,
            }
        }
        "rowwise_dot" => {
            let r = d.out.0 as u64;
            OpCost {
                fwd_flops: 2 * ea,
                fwd_bytes: (ea + eb + r) * S,
                bwd_flops: 2 * ea,
                bwd_bytes: (2 * ea + 2 * eb + r) * S,
            }
        }
        "sum_all" => OpCost {
            fwd_flops: ea,
            fwd_bytes: (ea + 1) * S,
            bwd_flops: 0,
            bwd_bytes: ea * S,
        },
        "mean_all" => OpCost {
            fwd_flops: ea + 1,
            fwd_bytes: (ea + 1) * S,
            bwd_flops: ea,
            bwd_bytes: ea * S,
        },
        "sum_axis_cols" => {
            let r = d.out.0 as u64;
            OpCost {
                fwd_flops: ea,
                fwd_bytes: (ea + r) * S,
                bwd_flops: ea,
                bwd_bytes: (ea + r) * S,
            }
        }
        "sum_squares" => OpCost {
            fwd_flops: 2 * ea,
            fwd_bytes: (ea + 1) * S,
            bwd_flops: ea,
            bwd_bytes: 2 * ea * S,
        },
        // softplus(x) - x*y summed, then the fused sigmoid gradient.
        "bce_with_logits" => OpCost {
            fwd_flops: 6 * ea,
            fwd_bytes: (2 * ea + 1) * S,
            bwd_flops: 3 * ea,
            bwd_bytes: 3 * ea * S,
        },
        "repeat_rows" => OpCost {
            fwd_flops: 0,
            fwd_bytes: (ea + e) * S,
            bwd_flops: e,
            bwd_bytes: (e + ea) * S,
        },
        "segment_sum_rows" => OpCost {
            fwd_flops: ea,
            fwd_bytes: (ea + e) * S,
            bwd_flops: 0,
            bwd_bytes: (e + ea) * S,
        },
        _ => return None,
    };
    Some(c)
}

/// Whether `kind` has a cost rule — the probe the `profile/op-coverage`
/// check in nm-check runs over the whole [`crate::OP_KINDS`] registry.
pub fn has_rule(kind: &str) -> bool {
    let probe = OpDims {
        out: (4, 4),
        a: (4, 4),
        b: (4, 4),
        nnz: 8,
    };
    cost_for(kind, &probe).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OP_KINDS;

    #[test]
    fn every_registered_kind_has_a_rule() {
        for kind in OP_KINDS {
            assert!(has_rule(kind), "no cost rule for op kind {kind:?}");
        }
    }

    #[test]
    fn unregistered_kind_has_no_rule() {
        assert!(!has_rule("conv2d"));
        assert!(!has_rule(""));
    }

    #[test]
    fn matmul_counts_the_classic_2mkn() {
        let d = OpDims {
            out: (3, 5),
            a: (3, 4),
            b: (4, 5),
            nnz: 0,
        };
        let c = cost_for("matmul", &d).unwrap();
        assert_eq!(c.fwd_flops, 2 * 3 * 4 * 5);
        assert_eq!(c.bwd_flops, 2 * c.fwd_flops);
        assert_eq!(c.fwd_bytes, (12 + 20 + 15) * 4);
    }

    #[test]
    fn spmm_scales_with_nnz_and_width() {
        let d = OpDims {
            out: (10, 7),
            a: (20, 7),
            b: (0, 0),
            nnz: 33,
        };
        let c = cost_for("spmm", &d).unwrap();
        assert_eq!(c.fwd_flops, 2 * 33 * 7);
        assert_eq!(c.fwd_flops, c.bwd_flops);
    }

    #[test]
    fn leaf_is_free() {
        let d = OpDims {
            out: (8, 8),
            a: (0, 0),
            b: (0, 0),
            nnz: 0,
        };
        assert_eq!(cost_for("leaf", &d).unwrap(), OpCost::default());
    }
}
