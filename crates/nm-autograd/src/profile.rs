//! The kernel-level training profiler.
//!
//! Attributes forward and backward self-time, modeled FLOPs/bytes (via
//! [`crate::cost`]), and tensor-allocation traffic (via
//! `nm_tensor::alloc`) to each op kind in the [`crate::OP_KINDS`]
//! registry. Timing flows through the `nm_obs` monotonic clock — the
//! sanctioned wall-clock domain — at nanosecond resolution, because a
//! single tape op on a probe-sized model runs well under a
//! microsecond.
//!
//! Discipline matches the PR 3 tracer: disabled (the default), every
//! instrumented op costs exactly one relaxed atomic load
//! ([`op_start`] returns `None` and the finish hook is skipped).
//! Aggregates are thread-local, like `nm_obs::trace`'s span
//! aggregates: the training loop drains its own thread's table with
//! [`take`] (or reads it with [`snapshot`]), so no cross-thread
//! synchronization ever sits on the kernel path.

use crate::cost::{self, OpDims};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether per-op profiling is on. One relaxed load — the entire cost
/// of an instrumented op when disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns per-op profiling on or off (process-global; the aggregate
/// tables stay thread-local).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Per-op-kind aggregate: call counts, self-time, modeled work, and
/// allocation traffic, split by pass direction where it matters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpAgg {
    pub fwd_calls: u64,
    pub fwd_ns: u64,
    pub fwd_flops: u64,
    pub fwd_bytes: u64,
    pub bwd_calls: u64,
    pub bwd_ns: u64,
    pub bwd_flops: u64,
    pub bwd_bytes: u64,
    /// Tensor bytes allocated while this op (either pass) ran.
    pub alloc_b: u64,
    /// Tensor bytes freed while this op (either pass) ran.
    pub freed_b: u64,
}

impl OpAgg {
    /// Folds another aggregate into this one — public so callers that
    /// combine tables across trainer calls (the streaming loop) don't
    /// have to reimplement the field list.
    pub fn merge(&mut self, other: &OpAgg) {
        self.fwd_calls += other.fwd_calls;
        self.fwd_ns += other.fwd_ns;
        self.fwd_flops += other.fwd_flops;
        self.fwd_bytes += other.fwd_bytes;
        self.bwd_calls += other.bwd_calls;
        self.bwd_ns += other.bwd_ns;
        self.bwd_flops += other.bwd_flops;
        self.bwd_bytes += other.bwd_bytes;
        self.alloc_b += other.alloc_b;
        self.freed_b += other.freed_b;
    }
}

thread_local! {
    static TABLE: RefCell<BTreeMap<&'static str, OpAgg>> = const { RefCell::new(BTreeMap::new()) };
}

/// An in-flight op measurement: start tick plus the allocation
/// counters at entry, so the finish hook can attribute deltas.
pub(crate) struct OpTimer {
    t0_ns: u64,
    alloc0: u64,
    freed0: u64,
}

/// Starts timing one op. `None` when profiling is disabled — the
/// caller skips the finish hook entirely, so the disabled path is the
/// single relaxed load inside [`enabled`].
#[inline]
pub(crate) fn op_start() -> Option<OpTimer> {
    if !enabled() {
        return None;
    }
    let (alloc0, freed0) = nm_tensor::alloc::counters();
    Some(OpTimer {
        t0_ns: nm_obs::clock::now_ns(),
        alloc0,
        freed0,
    })
}

/// Benchmark probe for the disabled path: runs exactly what an
/// instrumented op runs when profiling is off ([`op_start`] taking its
/// early-out and returning `None`). Public so `nm-bench` can gate the
/// one-relaxed-load contract (`profile.overhead_ns`) without reaching
/// into crate internals. Returns whether the probe stayed on the
/// disabled path, so callers can `black_box` something real.
#[inline]
pub fn disabled_probe() -> bool {
    op_start().is_none()
}

/// CI self-test knob for the differential profile gate: a value of the
/// form `kind` or `kind:factor` makes every instrumented run of that
/// op spin until it has taken `factor`× (default 2×) its measured
/// time. The spin sits inside the measured window, so the recorded
/// self-time genuinely grows — the injected per-op slowdown
/// `obs profile --compare` must catch. Never set outside CI.
fn slow_op() -> Option<(&'static str, u64)> {
    static SLOW: OnceLock<Option<(String, u64)>> = OnceLock::new();
    SLOW.get_or_init(|| {
        let v = std::env::var("NMCDR_PROF_SLOW_OP").ok()?;
        let (kind, factor) = match v.split_once(':') {
            Some((k, f)) => (k.to_string(), f.parse().unwrap_or(2)),
            None => (v, 2),
        };
        Some((kind, factor.max(2)))
    })
    .as_ref()
    .map(|(k, f)| (k.as_str(), *f))
}

fn elapsed_with_injection(kind: &'static str, t0_ns: u64) -> u64 {
    let elapsed = nm_obs::clock::now_ns().saturating_sub(t0_ns);
    let Some((slow_kind, factor)) = slow_op() else {
        return elapsed;
    };
    if slow_kind != kind {
        return elapsed;
    }
    // Busy-spin until the op has taken `factor`× its natural time (at
    // least 1us so zero-length ops still visibly slow down).
    let target = t0_ns + (elapsed * factor).max(1_000);
    let mut now = nm_obs::clock::now_ns();
    while now < target {
        std::hint::spin_loop();
        now = nm_obs::clock::now_ns();
    }
    now.saturating_sub(t0_ns)
}

fn record(kind: &'static str, f: impl FnOnce(&mut OpAgg)) {
    TABLE.with(|t| f(t.borrow_mut().entry(kind).or_default()));
}

/// Finishes a forward-pass measurement for `kind`.
pub(crate) fn op_finish_fwd(t: OpTimer, kind: &'static str, dims: &OpDims) {
    let ns = elapsed_with_injection(kind, t.t0_ns);
    let (alloc1, freed1) = nm_tensor::alloc::counters();
    let c = cost::cost_for(kind, dims).unwrap_or_default();
    record(kind, |agg| {
        agg.fwd_calls += 1;
        agg.fwd_ns += ns;
        agg.fwd_flops += c.fwd_flops;
        agg.fwd_bytes += c.fwd_bytes;
        agg.alloc_b += alloc1.saturating_sub(t.alloc0);
        agg.freed_b += freed1.saturating_sub(t.freed0);
    });
}

/// Finishes a backward-pass measurement for `kind`.
pub(crate) fn op_finish_bwd(t: OpTimer, kind: &'static str, dims: &OpDims) {
    let ns = elapsed_with_injection(kind, t.t0_ns);
    let (alloc1, freed1) = nm_tensor::alloc::counters();
    let c = cost::cost_for(kind, dims).unwrap_or_default();
    record(kind, |agg| {
        agg.bwd_calls += 1;
        agg.bwd_ns += ns;
        agg.bwd_flops += c.bwd_flops;
        agg.bwd_bytes += c.bwd_bytes;
        agg.alloc_b += alloc1.saturating_sub(t.alloc0);
        agg.freed_b += freed1.saturating_sub(t.freed0);
    });
}

/// Copies this thread's per-op aggregates, sorted by op kind.
pub fn snapshot() -> Vec<(&'static str, OpAgg)> {
    TABLE.with(|t| t.borrow().iter().map(|(k, v)| (*k, *v)).collect())
}

/// Drains this thread's per-op aggregates (returns and resets), sorted
/// by op kind.
pub fn take() -> Vec<(&'static str, OpAgg)> {
    TABLE.with(|t| std::mem::take(&mut *t.borrow_mut()).into_iter().collect())
}

/// Clears this thread's per-op aggregates.
pub fn reset() {
    TABLE.with(|t| t.borrow_mut().clear());
}

/// Folds a drained table into an accumulator keyed by kind — how the
/// trainer combines per-epoch drains into the run-level profile.
pub fn merge_into(acc: &mut BTreeMap<&'static str, OpAgg>, part: &[(&'static str, OpAgg)]) {
    for (kind, agg) in part {
        acc.entry(kind).or_default().merge(agg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;
    use nm_tensor::Tensor;

    // Profiling is process-global but tables are thread-local; run
    // each test in its own thread so a parallel test harness can't
    // interleave tables, and serialize the global toggle.
    fn with_profiling<R: Send>(f: impl FnOnce() -> R + Send) -> R {
        use std::sync::Mutex;
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        std::thread::scope(|s| {
            s.spawn(|| {
                set_enabled(true);
                reset();
                let r = f();
                set_enabled(false);
                r
            })
            .join()
            .expect("profiled thread panicked")
        })
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        set_enabled(false);
        reset();
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros(4, 4));
        let y = t.relu(x);
        let l = t.sum_all(y);
        t.backward(l);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn forward_and_backward_are_attributed_per_kind() {
        let table = with_profiling(|| {
            let mut t = Tape::new();
            let a = t.leaf(Tensor::ones(3, 4));
            let b = t.leaf(Tensor::ones(4, 5));
            let c = t.matmul(a, b);
            let l = t.sum_all(c);
            t.backward(l);
            take()
        });
        let get = |k: &str| {
            table
                .iter()
                .find(|(kind, _)| *kind == k)
                .map(|(_, a)| *a)
                .unwrap_or_else(|| panic!("no aggregate for {k}"))
        };
        let mm = get("matmul");
        assert_eq!(mm.fwd_calls, 1);
        assert_eq!(mm.bwd_calls, 1);
        assert_eq!(mm.fwd_flops, 2 * 3 * 4 * 5);
        assert_eq!(mm.bwd_flops, 4 * 3 * 4 * 5);
        assert_eq!(get("leaf").fwd_calls, 2);
        let sum = get("sum_all");
        assert_eq!(sum.fwd_calls, 1);
        assert_eq!(sum.bwd_calls, 1);
        // take() drained the table
        assert!(snapshot().is_empty());
    }

    #[test]
    fn allocation_traffic_is_attributed_to_the_allocating_op() {
        let table = with_profiling(|| {
            nm_tensor::alloc::reset();
            nm_tensor::alloc::set_enabled(true);
            let mut t = Tape::new();
            let a = t.leaf(Tensor::zeros(8, 8));
            let _r = t.relu(a); // relu output: 8*8*4 = 256 fresh bytes
            let out = take();
            nm_tensor::alloc::set_enabled(false);
            out
        });
        let relu = table
            .iter()
            .find(|(k, _)| *k == "relu")
            .map(|(_, a)| *a)
            .expect("relu aggregate");
        assert!(
            relu.alloc_b >= 256,
            "relu attributed only {} alloc bytes",
            relu.alloc_b
        );
    }

    #[test]
    fn merge_folds_partial_drains() {
        let mut acc = BTreeMap::new();
        let part = vec![(
            "matmul",
            OpAgg {
                fwd_calls: 2,
                fwd_flops: 100,
                ..Default::default()
            },
        )];
        merge_into(&mut acc, &part);
        merge_into(&mut acc, &part);
        assert_eq!(acc["matmul"].fwd_calls, 4);
        assert_eq!(acc["matmul"].fwd_flops, 200);
    }
}
