//! # nm-autograd
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`nm_tensor::Tensor`], purpose-built for the NMCDR reproduction.
//!
//! ## Model
//!
//! A [`Tape`] records a DAG of operations as they execute. Each op
//! returns a [`Var`] — a copyable index into the tape. Calling
//! [`Tape::backward`] on a scalar loss seeds its gradient with 1 and
//! sweeps the tape in reverse, accumulating gradients into every node
//! that requires them. One tape is built per training step and dropped
//! afterwards; parameters live outside the tape (see `nm-nn`) and are
//! re-bound as leaves each step.
//!
//! ## Op coverage
//!
//! Exactly what the paper's models need: dense matmul, broadcasting
//! arithmetic, ReLU/sigmoid/tanh/softplus, row softmax, CSR SpMM (the
//! GNN aggregation kernel, Eq. 4/9/14), row gather/scatter (embedding
//! lookup), repeat/segment-sum rows (per-user attention over candidate
//! items, Eq. 18–19), concat, slicing, reductions, and a fused
//! numerically-stable `BCE-with-logits` loss (Eq. 21).
//!
//! Gradients are verified against central finite differences in
//! `tests/grad_check.rs` for every op.

mod check;
mod ops;
pub mod optrace;
mod tape;

pub use check::finite_difference_grad;
pub use optrace::{TraceMeta, TraceNode, OP_KINDS};
pub use tape::{Tape, Var};
