//! # nm-autograd
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`nm_tensor::Tensor`], purpose-built for the NMCDR reproduction.
//!
//! ## Model
//!
//! A [`Tape`] records a DAG of operations as they execute. Each op
//! returns a [`Var`] — a copyable index into the tape. Calling
//! [`Tape::backward`] on a scalar loss seeds its gradient with 1 and
//! sweeps the tape in reverse, accumulating gradients into every node
//! that requires them. One tape is built per training step and dropped
//! afterwards; parameters live outside the tape (see `nm-nn`) and are
//! re-bound as leaves each step.
//!
//! ## Op coverage
//!
//! Exactly what the paper's models need: dense matmul, broadcasting
//! arithmetic, ReLU/sigmoid/tanh/softplus, row softmax, CSR SpMM (the
//! GNN aggregation kernel, Eq. 4/9/14), row gather/scatter (embedding
//! lookup), repeat/segment-sum rows (per-user attention over candidate
//! items, Eq. 18–19), concat, slicing, reductions, and a fused
//! numerically-stable `BCE-with-logits` loss (Eq. 21).
//!
//! Gradients are verified against central finite differences in
//! `tests/grad_check.rs` for every op.

//!
//! ## Profiling
//!
//! [`profile`] attributes forward/backward self-time, modeled
//! FLOPs/bytes (from the analytic rules in [`cost`]), and tensor
//! allocation traffic to each [`OP_KINDS`] entry. Disabled (the
//! default) it costs one relaxed atomic load per op.

mod check;
pub mod cost;
mod ops;
pub mod optrace;
pub mod profile;
mod tape;

pub use check::finite_difference_grad;
pub use cost::{cost_for, has_rule, OpCost, OpDims};
pub use optrace::{TraceMeta, TraceNode, OP_KINDS};
pub use profile::OpAgg;
pub use tape::{Tape, Var};
