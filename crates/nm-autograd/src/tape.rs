//! The autodiff tape: forward constructors and the reverse sweep.

use crate::cost::OpDims;
use crate::ops::Op;
use crate::profile;
use nm_graph::Csr;
use nm_tensor::{classify_broadcast, sigmoid_scalar, Axis, Broadcast, Tensor};
use std::rc::Rc;

/// Handle to a node on a [`Tape`]. Only valid for the tape that created
/// it; using it on another tape is a logic error caught by shape
/// assertions at best.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Position of this node on its tape — the index an exported
    /// [`crate::TraceNode`] has in `Tape::export_trace`'s output.
    pub fn index(self) -> usize {
        self.0
    }
}

pub(crate) struct Node {
    pub value: Tensor,
    pub grad: Option<Tensor>,
    pub needs_grad: bool,
    pub op: Op,
}

/// A single-use computation tape. Build the forward pass through the
/// constructor methods, call [`Tape::backward`] once on a scalar loss,
/// read gradients with [`Tape::grad`], then drop the tape.
pub struct Tape {
    nodes: Vec<Node>,
    id: u64,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        Self {
            nodes: Vec::new(),
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Process-unique identity of this tape. `nm-nn` parameters cache
    /// their leaf binding per tape id so a parameter used several times
    /// in one forward pass is a single leaf node.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of recorded nodes (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Per-node (op, output shape, needs_grad) view for
    /// [`Tape::export_trace`](crate::optrace).
    pub(crate) fn nodes_for_trace(&self) -> impl Iterator<Item = (&Op, (usize, usize), bool)> {
        self.nodes
            .iter()
            .map(|n| (&n.op, n.value.shape(), n.needs_grad))
    }

    /// Cost-rule inputs for node `i`: its output shape, its dense
    /// parents' shapes, and (for SpMM) the sparse operand's nnz.
    fn profile_dims(&self, i: usize) -> OpDims {
        let node = &self.nodes[i];
        let ps = node.op.parents();
        let shape_of = |v: Option<Var>| v.map_or((0, 0), |v| self.nodes[v.0].value.shape());
        let nnz = match &node.op {
            Op::Spmm(adj_t, _) => adj_t.nnz(),
            _ => 0,
        };
        OpDims {
            out: node.value.shape(),
            a: shape_of(ps[0]),
            b: shape_of(ps[1]),
            nnz,
        }
    }

    /// Closes a forward-pass profile window opened before the kernel
    /// ran. A `None` timer (profiler disabled) costs nothing here.
    fn finish_fwd(&self, t: Option<profile::OpTimer>, v: Var) -> Var {
        if let Some(t) = t {
            profile::op_finish_fwd(t, self.nodes[v.0].op.kind(), &self.profile_dims(v.0));
        }
        v
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        let needs_grad = match &op {
            Op::Leaf { requires_grad } => *requires_grad,
            other => other
                .parents()
                .iter()
                .flatten()
                .any(|p| self.nodes[p.0].needs_grad),
        };
        self.nodes.push(Node {
            value,
            grad: None,
            needs_grad,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Trainable leaf (parameter binding).
    pub fn leaf(&mut self, value: Tensor) -> Var {
        let t = profile::op_start();
        let v = self.push(
            value,
            Op::Leaf {
                requires_grad: true,
            },
        );
        self.finish_fwd(t, v)
    }

    /// Non-trainable input (features, labels used as values).
    pub fn constant(&mut self, value: Tensor) -> Var {
        let t = profile::op_start();
        let v = self.push(
            value,
            Op::Leaf {
                requires_grad: false,
            },
        );
        self.finish_fwd(t, v)
    }

    /// The tensor value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v`, if it required one and
    /// `backward` has run.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    // ---- arithmetic -------------------------------------------------

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_start();
        let bc = classify_broadcast(self.value(a).shape(), self.value(b).shape(), "tape.add");
        let value = self.value(a).add(self.value(b));
        let v = self.push(value, Op::Add(a, b, bc));
        self.finish_fwd(t, v)
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_start();
        let bc = classify_broadcast(self.value(a).shape(), self.value(b).shape(), "tape.sub");
        let value = self.value(a).sub(self.value(b));
        let v = self.push(value, Op::Sub(a, b, bc));
        self.finish_fwd(t, v)
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_start();
        let bc = classify_broadcast(self.value(a).shape(), self.value(b).shape(), "tape.mul");
        let value = self.value(a).mul(self.value(b));
        let v = self.push(value, Op::Mul(a, b, bc));
        self.finish_fwd(t, v)
    }

    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let t = profile::op_start();
        let value = self.value(a).scale(s);
        let v = self.push(value, Op::Scale(a, s));
        self.finish_fwd(t, v)
    }

    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let t = profile::op_start();
        let value = self.value(a).add_scalar(s);
        let v = self.push(value, Op::AddScalar(a));
        self.finish_fwd(t, v)
    }

    pub fn neg(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).neg();
        let v = self.push(value, Op::Neg(a));
        self.finish_fwd(t, v)
    }

    /// `1 - a` — the gate complement used by Eq. 10/16.
    pub fn one_minus(&mut self, a: Var) -> Var {
        let n = self.neg(a);
        self.add_scalar(n, 1.0)
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).matmul(self.value(b));
        let v = self.push(value, Op::Matmul(a, b));
        self.finish_fwd(t, v)
    }

    // ---- activations ------------------------------------------------

    pub fn relu(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).relu();
        let v = self.push(value, Op::Relu(a));
        self.finish_fwd(t, v)
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).sigmoid();
        let v = self.push(value, Op::Sigmoid(a));
        self.finish_fwd(t, v)
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).tanh();
        let v = self.push(value, Op::Tanh(a));
        self.finish_fwd(t, v)
    }

    pub fn softplus(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).softplus();
        let v = self.push(value, Op::Softplus(a));
        self.finish_fwd(t, v)
    }

    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).softmax_rows();
        let v = self.push(value, Op::SoftmaxRows(a));
        self.finish_fwd(t, v)
    }

    // ---- structure --------------------------------------------------

    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).concat_cols(self.value(b));
        let v = self.push(value, Op::ConcatCols(a, b));
        self.finish_fwd(t, v)
    }

    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let t = profile::op_start();
        let value = self.value(a).slice_rows(start, end);
        let v = self.push(value, Op::SliceRows(a, start, end));
        self.finish_fwd(t, v)
    }

    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let t = profile::op_start();
        let value = self.value(a).slice_cols(start, end);
        let v = self.push(value, Op::SliceCols(a, start, end));
        self.finish_fwd(t, v)
    }

    pub fn gather_rows(&mut self, a: Var, indices: Rc<Vec<u32>>) -> Var {
        let t = profile::op_start();
        let value = self.value(a).gather_rows(&indices);
        let v = self.push(value, Op::GatherRows(a, indices));
        self.finish_fwd(t, v)
    }

    pub fn reshape(&mut self, a: Var, rows: usize, cols: usize) -> Var {
        let t = profile::op_start();
        let value = self
            .value(a)
            .reshape(rows, cols)
            .expect("tape.reshape: element count mismatch");
        let v = self.push(value, Op::Reshape(a));
        self.finish_fwd(t, v)
    }

    /// Repeats each row `k` times consecutively: `R x C -> (R*k) x C`.
    pub fn repeat_rows(&mut self, a: Var, k: usize) -> Var {
        let t = profile::op_start();
        assert!(k > 0, "repeat_rows: k must be positive");
        let src = self.value(a);
        let (r, c) = src.shape();
        let mut out = Tensor::zeros(r * k, c);
        for i in 0..r {
            let row = src.row_slice(i);
            for j in 0..k {
                out.row_slice_mut(i * k + j).copy_from_slice(row);
            }
        }
        let v = self.push(out, Op::RepeatRows(a, k));
        self.finish_fwd(t, v)
    }

    /// Sums consecutive groups of `k` rows: `(R*k) x C -> R x C`.
    pub fn segment_sum_rows(&mut self, a: Var, k: usize) -> Var {
        let t = profile::op_start();
        assert!(k > 0, "segment_sum_rows: k must be positive");
        let src = self.value(a);
        let (rk, c) = src.shape();
        assert_eq!(
            rk % k,
            0,
            "segment_sum_rows: {rk} rows not divisible by {k}"
        );
        let r = rk / k;
        let mut out = Tensor::zeros(r, c);
        for i in 0..r {
            for j in 0..k {
                let s = src.row_slice(i * k + j);
                for (o, &v) in out.row_slice_mut(i).iter_mut().zip(s) {
                    *o += v;
                }
            }
        }
        let v = self.push(out, Op::SegmentSumRows(a, k));
        self.finish_fwd(t, v)
    }

    // ---- sparse -----------------------------------------------------

    /// `adj @ x` where `adj` is CSR and `adj_t` its precomputed
    /// transpose (backward is `adj_t @ grad`).
    ///
    /// # Panics
    /// If `adj_t` is not shape-consistent with `adj`.
    pub fn spmm(&mut self, adj: Rc<Csr>, adj_t: Rc<Csr>, x: Var) -> Var {
        let t = profile::op_start();
        assert_eq!(
            (adj.n_cols(), adj.n_rows()),
            (adj_t.n_rows(), adj_t.n_cols()),
            "spmm: adj_t is not the transpose shape of adj"
        );
        let xv = self.value(x);
        let width = xv.cols();
        assert_eq!(
            adj.n_cols(),
            xv.rows(),
            "spmm: adj cols {} != x rows {}",
            adj.n_cols(),
            xv.rows()
        );
        let out = adj.spmm(xv.data(), width);
        let value = Tensor::new(adj.n_rows(), width, out);
        let v = self.push(value, Op::Spmm(adj_t, x));
        self.finish_fwd(t, v)
    }

    // ---- reductions & losses -----------------------------------------

    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).rowwise_dot(self.value(b));
        let v = self.push(value, Op::RowwiseDot(a, b));
        self.finish_fwd(t, v)
    }

    pub fn sum_all(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = Tensor::scalar(self.value(a).sum());
        let v = self.push(value, Op::SumAll(a));
        self.finish_fwd(t, v)
    }

    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = Tensor::scalar(self.value(a).mean());
        let v = self.push(value, Op::MeanAll(a));
        self.finish_fwd(t, v)
    }

    /// Row sums -> `R x 1`.
    pub fn sum_axis_cols(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = self.value(a).sum_axis(Axis::Cols);
        let v = self.push(value, Op::SumAxisCols(a));
        self.finish_fwd(t, v)
    }

    pub fn sum_squares(&mut self, a: Var) -> Var {
        let t = profile::op_start();
        let value = Tensor::scalar(self.value(a).sum_squares());
        let v = self.push(value, Op::SumSquares(a));
        self.finish_fwd(t, v)
    }

    /// Numerically-stable mean binary-cross-entropy on logits:
    /// `mean(softplus(x) - x * y)` (Eq. 21 with `ŷ = σ(x)` fused in).
    ///
    /// # Panics
    /// If `targets` shape differs from the logits.
    pub fn bce_with_logits_mean(&mut self, logits: Var, targets: Rc<Tensor>) -> Var {
        let t = profile::op_start();
        let x = self.value(logits);
        assert_eq!(
            x.shape(),
            targets.shape(),
            "bce: logits {:?} vs targets {:?}",
            x.shape(),
            targets.shape()
        );
        let n = x.len().max(1) as f32;
        let loss = x
            .data()
            .iter()
            .zip(targets.data())
            .map(|(&xi, &yi)| nm_tensor::softplus_scalar(xi) - xi * yi)
            .sum::<f32>()
            / n;
        let v = self.push(Tensor::scalar(loss), Op::BceWithLogits(logits, targets));
        self.finish_fwd(t, v)
    }

    // ---- backward -----------------------------------------------------

    fn accumulate(&mut self, v: Var, contribution: Tensor) {
        if !self.nodes[v.0].needs_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(g) => g.add_assign(&contribution),
            slot @ None => *slot = Some(contribution),
        }
    }

    /// Reduces an output-shaped gradient onto a broadcast operand.
    fn reduce_for_broadcast(grad: &Tensor, bc: Broadcast) -> Tensor {
        match bc {
            Broadcast::Same => grad.clone(),
            Broadcast::RowVector => grad.sum_axis(Axis::Rows),
            Broadcast::ColVector => grad.sum_axis(Axis::Cols),
            Broadcast::Scalar => Tensor::scalar(grad.sum()),
        }
    }

    /// Runs the reverse sweep from `loss`, which must be `1 x 1`.
    ///
    /// May be called once per tape; a second call would double-count
    /// (gradients accumulate), so it panics.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a 1x1 scalar"
        );
        assert!(
            self.nodes.iter().all(|n| n.grad.is_none()),
            "backward: tape already swept"
        );
        if !self.nodes[loss.0].needs_grad {
            return; // loss does not depend on any parameter
        }
        self.nodes[loss.0].grad = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(grad) = self.nodes[i].grad.clone() else {
                continue;
            };
            // One profile window per node: the body below is exactly
            // node i's backward kernel (adjoint computation plus the
            // accumulate into its parents).
            let timer = profile::op_start();
            // Clone the small op metadata; tensors inside are Rc'd.
            match &self.nodes[i].op {
                Op::Leaf { .. } => {}
                &Op::Add(a, b, bc) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, Self::reduce_for_broadcast(&grad, bc));
                }
                &Op::Sub(a, b, bc) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, Self::reduce_for_broadcast(&grad, bc).neg());
                }
                &Op::Mul(a, b, bc) => {
                    let bv = self.nodes[b.0].value.clone();
                    let av = self.nodes[a.0].value.clone();
                    // d/da: grad ⊙ b (b broadcasts onto grad's shape)
                    self.accumulate(a, grad.mul(&bv));
                    // d/db: reduce(grad ⊙ a) onto b's shape
                    let gb = Self::reduce_for_broadcast(&grad.mul(&av), bc);
                    self.accumulate(b, gb);
                }
                &Op::Scale(a, s) => self.accumulate(a, grad.scale(s)),
                &Op::AddScalar(a) => self.accumulate(a, grad.clone()),
                &Op::Neg(a) => self.accumulate(a, grad.neg()),
                &Op::Matmul(a, b) => {
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    self.accumulate(a, grad.matmul_nt(&bv));
                    self.accumulate(b, av.matmul_tn(&grad));
                }
                &Op::Relu(a) => {
                    let xv = &self.nodes[a.0].value;
                    let mut g = grad.clone();
                    for (gv, &xv) in g.data_mut().iter_mut().zip(xv.data()) {
                        if xv <= 0.0 {
                            *gv = 0.0;
                        }
                    }
                    self.accumulate(a, g);
                }
                &Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let mut g = grad.clone();
                    for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                        *gv *= yv * (1.0 - yv);
                    }
                    self.accumulate(a, g);
                }
                &Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let mut g = grad.clone();
                    for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                        *gv *= 1.0 - yv * yv;
                    }
                    self.accumulate(a, g);
                }
                &Op::Softplus(a) => {
                    let xv = &self.nodes[a.0].value;
                    let mut g = grad.clone();
                    for (gv, &x) in g.data_mut().iter_mut().zip(xv.data()) {
                        *gv *= sigmoid_scalar(x);
                    }
                    self.accumulate(a, g);
                }
                &Op::SoftmaxRows(a) => {
                    let p = &self.nodes[i].value;
                    let (r, c) = p.shape();
                    let mut g = Tensor::zeros(r, c);
                    for row in 0..r {
                        let prow = p.row_slice(row);
                        let grow = grad.row_slice(row);
                        let dot: f32 = prow.iter().zip(grow).map(|(&pv, &gv)| pv * gv).sum();
                        for ((o, &pv), &gv) in g.row_slice_mut(row).iter_mut().zip(prow).zip(grow) {
                            *o = pv * (gv - dot);
                        }
                    }
                    self.accumulate(a, g);
                }
                &Op::ConcatCols(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    let cb = self.nodes[b.0].value.cols();
                    self.accumulate(a, grad.slice_cols(0, ca));
                    self.accumulate(b, grad.slice_cols(ca, ca + cb));
                }
                &Op::SliceRows(a, start, _end) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut g = Tensor::zeros(r, c);
                    let idx: Vec<u32> = (start..start + grad.rows()).map(|x| x as u32).collect();
                    g.scatter_add_rows(&idx, &grad);
                    self.accumulate(a, g);
                }
                &Op::SliceCols(a, start, end) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut g = Tensor::zeros(r, c);
                    for row in 0..r {
                        g.row_slice_mut(row)[start..end].copy_from_slice(grad.row_slice(row));
                    }
                    self.accumulate(a, g);
                }
                Op::GatherRows(a, indices) => {
                    let a = *a;
                    let indices = Rc::clone(indices);
                    let (r, c) = self.nodes[a.0].value.shape();
                    let mut g = Tensor::zeros(r, c);
                    g.scatter_add_rows(&indices, &grad);
                    self.accumulate(a, g);
                }
                Op::Spmm(adj_t, x) => {
                    let x = *x;
                    let adj_t = Rc::clone(adj_t);
                    let width = grad.cols();
                    let gx = adj_t.spmm(grad.data(), width);
                    let gx = Tensor::new(adj_t.n_rows(), width, gx);
                    self.accumulate(x, gx);
                }
                &Op::RowwiseDot(a, b) => {
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    // grad is R x 1; broadcast across columns
                    self.accumulate(a, bv.mul(&grad));
                    self.accumulate(b, av.mul(&grad));
                }
                &Op::SumAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    self.accumulate(a, Tensor::full(r, c, grad.item()));
                }
                &Op::MeanAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let n = (r * c).max(1) as f32;
                    self.accumulate(a, Tensor::full(r, c, grad.item() / n));
                }
                &Op::SumAxisCols(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    // grad: R x 1 broadcast across the row
                    self.accumulate(a, Tensor::ones(r, c).mul(&grad));
                }
                &Op::SumSquares(a) => {
                    let av = self.nodes[a.0].value.clone();
                    self.accumulate(a, av.scale(2.0 * grad.item()));
                }
                Op::BceWithLogits(x, targets) => {
                    let x = *x;
                    let targets = Rc::clone(targets);
                    let xv = &self.nodes[x.0].value;
                    let n = xv.len().max(1) as f32;
                    let scale = grad.item() / n;
                    let mut g = xv.clone();
                    for (gv, &yv) in g.data_mut().iter_mut().zip(targets.data()) {
                        *gv = (sigmoid_scalar(*gv) - yv) * scale;
                    }
                    self.accumulate(x, g);
                }
                &Op::Reshape(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let g = grad.reshape(r, c).expect("reshape backward");
                    self.accumulate(a, g);
                }
                &Op::RepeatRows(a, k) => {
                    // adjoint of repeat = segment sum
                    let (rk, c) = grad.shape();
                    let r = rk / k;
                    let mut g = Tensor::zeros(r, c);
                    for row in 0..r {
                        for j in 0..k {
                            let s = grad.row_slice(row * k + j);
                            for (o, &v) in g.row_slice_mut(row).iter_mut().zip(s) {
                                *o += v;
                            }
                        }
                    }
                    self.accumulate(a, g);
                }
                &Op::SegmentSumRows(a, k) => {
                    // adjoint of segment sum = repeat
                    let (r, c) = grad.shape();
                    let mut g = Tensor::zeros(r * k, c);
                    for row in 0..r {
                        let s = grad.row_slice(row);
                        for j in 0..k {
                            g.row_slice_mut(row * k + j).copy_from_slice(s);
                        }
                    }
                    self.accumulate(a, g);
                }
            }
            if let Some(t) = timer {
                profile::op_finish_bwd(t, self.nodes[i].op.kind(), &self.profile_dims(i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_gradient() {
        // loss = mean( (x * 3) + 1 )  => dloss/dx = 3/n
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new(1, 2, vec![1.0, 2.0]));
        let y = t.scale(x, 3.0);
        let z = t.add_scalar(y, 1.0);
        let l = t.mean_all(z);
        t.backward(l);
        let g = t.grad(x).unwrap();
        assert!((g.data()[0] - 1.5).abs() < 1e-6);
        assert!((g.data()[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn matmul_gradients_match_manual() {
        // loss = sum(A @ B); dA = 1 @ B^T, dB = A^T @ 1
        let mut t = Tape::new();
        let a = t.leaf(Tensor::new(2, 2, vec![1., 2., 3., 4.]));
        let b = t.leaf(Tensor::new(2, 2, vec![5., 6., 7., 8.]));
        let c = t.matmul(a, b);
        let l = t.sum_all(c);
        t.backward(l);
        let ga = t.grad(a).unwrap();
        let gb = t.grad(b).unwrap();
        assert_eq!(ga.data(), &[11., 15., 11., 15.]);
        assert_eq!(gb.data(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn constant_gets_no_grad() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::scalar(2.0));
        let c = t.constant(Tensor::scalar(3.0));
        let y = t.mul(x, c);
        let l = t.sum_all(y);
        t.backward(l);
        assert!(t.grad(c).is_none());
        assert_eq!(t.grad(x).unwrap().item(), 3.0);
    }

    #[test]
    fn grad_accumulates_over_reuse() {
        // y = x + x => dy/dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Tensor::scalar(1.0));
        let y = t.add(x, x);
        let l = t.sum_all(y);
        t.backward(l);
        assert_eq!(t.grad(x).unwrap().item(), 2.0);
    }

    #[test]
    fn bce_with_logits_value_and_grad() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new(1, 2, vec![0.0, 0.0]));
        let y = Rc::new(Tensor::new(1, 2, vec![1.0, 0.0]));
        let l = t.bce_with_logits_mean(x, y);
        // at logit 0: loss = ln 2 each
        assert!((t.value(l).item() - std::f32::consts::LN_2).abs() < 1e-6);
        t.backward(l);
        let g = t.grad(x).unwrap();
        // d/dx = (sigma(0) - y)/2 = (0.5-1)/2, (0.5-0)/2
        assert!((g.data()[0] + 0.25).abs() < 1e-6);
        assert!((g.data()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "loss must be a 1x1 scalar")]
    fn backward_requires_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::zeros(2, 2));
        t.backward(x);
    }

    #[test]
    #[should_panic(expected = "already swept")]
    fn double_backward_panics() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::scalar(1.0));
        let l = t.sum_all(x);
        t.backward(l);
        t.backward(l);
    }

    #[test]
    fn spmm_forward_and_backward() {
        // adjacency 2x3: row0 -> {0:1, 2:0.5}, row1 -> {1:2}
        let adj = Rc::new(Csr::from_edges(
            2,
            3,
            &[(0, 0, 1.0), (0, 2, 0.5), (1, 1, 2.0)],
        ));
        let adj_t = Rc::new(adj.transpose());
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new(3, 1, vec![1., 2., 3.]));
        let y = t.spmm(Rc::clone(&adj), adj_t, x);
        assert_eq!(t.value(y).data(), &[2.5, 4.0]);
        let l = t.sum_all(y);
        t.backward(l);
        // grad x = A^T @ 1 = col sums of A
        assert_eq!(t.grad(x).unwrap().data(), &[1.0, 2.0, 0.5]);
    }

    #[test]
    fn repeat_and_segment_sum_are_adjoint_shapes() {
        let mut t = Tape::new();
        let x = t.leaf(Tensor::new(2, 2, vec![1., 2., 3., 4.]));
        let r = t.repeat_rows(x, 3);
        assert_eq!(t.value(r).shape(), (6, 2));
        let s = t.segment_sum_rows(r, 3);
        assert_eq!(t.value(s).shape(), (2, 2));
        // segment_sum(repeat(x, 3), 3) == 3x
        assert_eq!(t.value(s).data(), &[3., 6., 9., 12.]);
        let l = t.sum_all(s);
        t.backward(l);
        assert_eq!(t.grad(x).unwrap().data(), &[3., 3., 3., 3.]);
    }

    #[test]
    fn gather_rows_grad_scatters() {
        let mut t = Tape::new();
        let table = t.leaf(Tensor::new(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let g = t.gather_rows(table, Rc::new(vec![2, 2, 0]));
        let l = t.sum_all(g);
        t.backward(l);
        let grad = t.grad(table).unwrap();
        assert_eq!(grad.row_slice(0), &[1., 1.]);
        assert_eq!(grad.row_slice(1), &[0., 0.]);
        assert_eq!(grad.row_slice(2), &[2., 2.]);
    }

    #[test]
    fn loss_without_params_is_noop() {
        let mut t = Tape::new();
        let c = t.constant(Tensor::scalar(5.0));
        let l = t.sum_all(c);
        t.backward(l); // must not panic
        assert!(t.grad(c).is_none());
    }
}
