//! Property-style tests for the tensor engine's algebraic invariants.
//!
//! Formerly driven by `proptest`; now a deterministic seed sweep so the
//! workspace tests run fully offline. Each case draws shapes and data
//! from a seeded [`nm_tensor::rng::StdRng`], covering the same space.

use nm_tensor::rng::{Rng, SeedableRng, StdRng};
use nm_tensor::{Axis, Tensor, TensorRng};

const CASES: u64 = 64;

/// Draws a dimension in `1..8` (the old `small_dim()` strategy).
fn small_dim(rng: &mut StdRng) -> usize {
    rng.gen_range(1usize..8)
}

#[test]
fn add_commutes() {
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0xADD0 + case);
        let (r, c) = (small_dim(&mut shape_rng), small_dim(&mut shape_rng));
        let mut rng = TensorRng::seed_from(case);
        let a = Tensor::randn(r, c, 2.0, &mut rng);
        let b = Tensor::randn(r, c, 2.0, &mut rng);
        assert!(a.add(&b).max_abs_diff(&b.add(&a)) < 1e-5);
    }
}

#[test]
fn transpose_involution() {
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7001 + case);
        let (r, c) = (small_dim(&mut shape_rng), small_dim(&mut shape_rng));
        let mut rng = TensorRng::seed_from(case);
        let t = Tensor::randn(r, c, 1.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }
}

#[test]
fn matmul_identity_left_right() {
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7002 + case);
        let (r, c) = (small_dim(&mut shape_rng), small_dim(&mut shape_rng));
        let mut rng = TensorRng::seed_from(case);
        let t = Tensor::randn(r, c, 1.0, &mut rng);
        assert!(Tensor::eye(r).matmul(&t).max_abs_diff(&t) < 1e-5);
        assert!(t.matmul(&Tensor::eye(c)).max_abs_diff(&t) < 1e-5);
    }
}

#[test]
fn matmul_transpose_identity() {
    // (A B)^T == B^T A^T
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7003 + case);
        let m = small_dim(&mut shape_rng);
        let k = small_dim(&mut shape_rng);
        let n = small_dim(&mut shape_rng);
        let mut rng = TensorRng::seed_from(case);
        let a = Tensor::randn(m, k, 1.0, &mut rng);
        let b = Tensor::randn(k, n, 1.0, &mut rng);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert!(left.max_abs_diff(&right) < 1e-4);
    }
}

#[test]
fn matmul_fused_variants_agree() {
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7004 + case);
        let m = small_dim(&mut shape_rng);
        let k = small_dim(&mut shape_rng);
        let n = small_dim(&mut shape_rng);
        let mut rng = TensorRng::seed_from(case);
        let a = Tensor::randn(k, m, 1.0, &mut rng);
        let b = Tensor::randn(k, n, 1.0, &mut rng);
        assert!(a.matmul_tn(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-4);
        let c = Tensor::randn(m, k, 1.0, &mut rng);
        let d = Tensor::randn(n, k, 1.0, &mut rng);
        assert!(c.matmul_nt(&d).max_abs_diff(&c.matmul(&d.transpose())) < 1e-4);
    }
}

#[test]
fn softmax_rows_is_distribution() {
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7005 + case);
        let (r, c) = (small_dim(&mut shape_rng), small_dim(&mut shape_rng));
        let mut rng = TensorRng::seed_from(case);
        let t = Tensor::randn(r, c, 5.0, &mut rng);
        let s = t.softmax_rows();
        assert!(s.all_finite());
        for i in 0..r {
            let sum: f32 = s.row_slice(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(s.row_slice(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn sum_axis_total_matches_sum() {
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7006 + case);
        let (r, c) = (small_dim(&mut shape_rng), small_dim(&mut shape_rng));
        let mut rng = TensorRng::seed_from(case);
        let t = Tensor::randn(r, c, 1.0, &mut rng);
        let via_rows = t.sum_axis(Axis::Rows).sum();
        let via_cols = t.sum_axis(Axis::Cols).sum();
        assert!((via_rows - t.sum()).abs() < 1e-3);
        assert!((via_cols - t.sum()).abs() < 1e-3);
    }
}

#[test]
fn gather_scatter_adjoint_dot_identity() {
    // <gather(A, ix), B> == <A, scatter(ix, B)> — the adjoint identity
    // autograd relies on.
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7007 + case);
        let rows = shape_rng.gen_range(2usize..8);
        let c = small_dim(&mut shape_rng);
        let mut rng = TensorRng::seed_from(case);
        let a = Tensor::randn(rows, c, 1.0, &mut rng);
        let ix: Vec<u32> = (0..5)
            .map(|i| ((case as usize + i) % rows) as u32)
            .collect();
        let b = Tensor::randn(ix.len(), c, 1.0, &mut rng);
        let g = a.gather_rows(&ix);
        let lhs: f32 = g.data().iter().zip(b.data()).map(|(x, y)| x * y).sum();
        let mut scat = Tensor::zeros(rows, c);
        scat.scatter_add_rows(&ix, &b);
        let rhs: f32 = a.data().iter().zip(scat.data()).map(|(x, y)| x * y).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }
}

#[test]
fn relu_idempotent() {
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7008 + case);
        let (r, c) = (small_dim(&mut shape_rng), small_dim(&mut shape_rng));
        let mut rng = TensorRng::seed_from(case);
        let t = Tensor::randn(r, c, 3.0, &mut rng);
        let once = t.relu();
        assert_eq!(once.relu(), once);
    }
}

#[test]
fn sigmoid_bounded() {
    for case in 0..CASES {
        let mut shape_rng = StdRng::seed_from_u64(0x7009 + case);
        let (r, c) = (small_dim(&mut shape_rng), small_dim(&mut shape_rng));
        let mut rng = TensorRng::seed_from(case);
        let t = Tensor::randn(r, c, 20.0, &mut rng);
        let s = t.sigmoid();
        assert!(s.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
