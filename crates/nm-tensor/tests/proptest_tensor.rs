//! Property-based tests for the tensor engine's algebraic invariants.

use nm_tensor::{Axis, Tensor};
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..8
}

proptest! {
    #[test]
    fn add_commutes(r in small_dim(), c in small_dim(), seed in 0u64..1000) {
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let a = Tensor::randn(r, c, 2.0, &mut rng);
        let b = Tensor::randn(r, c, 2.0, &mut rng);
        prop_assert!(a.add(&b).max_abs_diff(&b.add(&a)) < 1e-5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(r in small_dim(), c in small_dim(), seed in 0u64..1000) {
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let t = Tensor::randn(r, c, 1.0, &mut rng);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_identity_left_right(r in small_dim(), c in small_dim(), seed in 0u64..1000) {
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let t = Tensor::randn(r, c, 1.0, &mut rng);
        prop_assert!(Tensor::eye(r).matmul(&t).max_abs_diff(&t) < 1e-5);
        prop_assert!(t.matmul(&Tensor::eye(c)).max_abs_diff(&t) < 1e-5);
    }

    #[test]
    fn matmul_transpose_identity(m in small_dim(), k in small_dim(), n in small_dim(), seed in 0u64..1000) {
        // (A B)^T == B^T A^T
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let a = Tensor::randn(m, k, 1.0, &mut rng);
        let b = Tensor::randn(k, n, 1.0, &mut rng);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-4);
    }

    #[test]
    fn matmul_fused_variants_agree(m in small_dim(), k in small_dim(), n in small_dim(), seed in 0u64..1000) {
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let a = Tensor::randn(k, m, 1.0, &mut rng);
        let b = Tensor::randn(k, n, 1.0, &mut rng);
        prop_assert!(a.matmul_tn(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-4);
        let c = Tensor::randn(m, k, 1.0, &mut rng);
        let d = Tensor::randn(n, k, 1.0, &mut rng);
        prop_assert!(c.matmul_nt(&d).max_abs_diff(&c.matmul(&d.transpose())) < 1e-4);
    }

    #[test]
    fn softmax_rows_is_distribution(r in small_dim(), c in small_dim(), seed in 0u64..1000) {
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let t = Tensor::randn(r, c, 5.0, &mut rng);
        let s = t.softmax_rows();
        prop_assert!(s.all_finite());
        for i in 0..r {
            let sum: f32 = s.row_slice(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row_slice(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn sum_axis_total_matches_sum(r in small_dim(), c in small_dim(), seed in 0u64..1000) {
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let t = Tensor::randn(r, c, 1.0, &mut rng);
        let via_rows = t.sum_axis(Axis::Rows).sum();
        let via_cols = t.sum_axis(Axis::Cols).sum();
        prop_assert!((via_rows - t.sum()).abs() < 1e-3);
        prop_assert!((via_cols - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn gather_scatter_adjoint_dot_identity(rows in 2usize..8, c in small_dim(), seed in 0u64..1000) {
        // <gather(A, ix), B> == <A, scatter(ix, B)> — the adjoint identity
        // autograd relies on.
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let a = Tensor::randn(rows, c, 1.0, &mut rng);
        let ix: Vec<u32> = (0..5).map(|i| ((seed as usize + i) % rows) as u32).collect();
        let b = Tensor::randn(ix.len(), c, 1.0, &mut rng);
        let g = a.gather_rows(&ix);
        let lhs: f32 = g.data().iter().zip(b.data()).map(|(x, y)| x * y).sum();
        let mut scat = Tensor::zeros(rows, c);
        scat.scatter_add_rows(&ix, &b);
        let rhs: f32 = a.data().iter().zip(scat.data()).map(|(x, y)| x * y).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn relu_idempotent(r in small_dim(), c in small_dim(), seed in 0u64..1000) {
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let t = Tensor::randn(r, c, 3.0, &mut rng);
        let once = t.relu();
        prop_assert_eq!(once.relu(), once);
    }

    #[test]
    fn sigmoid_bounded(r in small_dim(), c in small_dim(), seed in 0u64..1000) {
        let mut rng = nm_tensor::TensorRng::seed_from(seed);
        let t = Tensor::randn(r, c, 20.0, &mut rng);
        let s = t.sigmoid();
        prop_assert!(s.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
