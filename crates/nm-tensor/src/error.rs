use std::fmt;

/// Errors from data-driven tensor construction.
///
/// Shape mismatches inside arithmetic ops are programmer errors and panic
/// instead (see crate docs); this type only covers cases where the error
/// depends on runtime data a caller may legitimately need to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// `data.len()` does not equal `rows * cols`.
    LengthMismatch {
        rows: usize,
        cols: usize,
        len: usize,
    },
    /// A reshape target has a different element count than the source.
    ReshapeMismatch {
        from: (usize, usize),
        to: (usize, usize),
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { rows, cols, len } => write!(
                f,
                "tensor data length {len} does not match shape {rows}x{cols} ({} elements)",
                rows * cols
            ),
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape {}x{} ({} elems) into {}x{} ({} elems)",
                from.0,
                from.1,
                from.0 * from.1,
                to.0,
                to.1,
                to.0 * to.1
            ),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            rows: 2,
            cols: 3,
            len: 5,
        };
        let s = e.to_string();
        assert!(s.contains("5"));
        assert!(s.contains("2x3"));
    }

    #[test]
    fn display_reshape_mismatch() {
        let e = TensorError::ReshapeMismatch {
            from: (2, 3),
            to: (4, 2),
        };
        assert!(e.to_string().contains("6 elems"));
    }
}
