//! Activation functions and numerically-stable compound kernels.
//!
//! All functions return new tensors; gradients live in `nm-autograd`.
//! The scalar helpers (`sigmoid_scalar` etc.) are shared with the
//! backward passes so forward/backward can never drift apart.

use crate::Tensor;

/// Numerically-stable scalar sigmoid.
#[inline]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically-stable scalar softplus `ln(1 + e^x)`.
#[inline]
pub fn softplus_scalar(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

impl Tensor {
    /// Elementwise ReLU.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Elementwise sigmoid (numerically stable).
    pub fn sigmoid(&self) -> Tensor {
        self.map(sigmoid_scalar)
    }

    /// Elementwise tanh.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise softplus (smooth ReLU; used in the paper's stability
    /// analysis §II-H).
    pub fn softplus(&self) -> Tensor {
        self.map(softplus_scalar)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural log of `max(x, eps)` — guarded so training
    /// never produces `-inf` on a zero probability.
    pub fn ln_guarded(&self, eps: f32) -> Tensor {
        self.map(|x| x.max(eps).ln())
    }

    /// Row-wise softmax with max-subtraction for stability.
    ///
    /// This is Eq. 18's virtual-link-strength kernel.
    pub fn softmax_rows(&self) -> Tensor {
        let (r, c) = self.shape();
        let mut out = self.clone();
        for i in 0..r {
            let row = &mut out.data_mut()[i * c..(i + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Row-wise masked softmax: entries where `mask` is `false` get
    /// probability 0 and are excluded from normalization. A fully-masked
    /// row yields all zeros.
    pub fn softmax_rows_masked(&self, mask: &[bool]) -> Tensor {
        let (r, c) = self.shape();
        assert_eq!(
            mask.len(),
            r * c,
            "softmax_rows_masked: mask length {} != {} elements",
            mask.len(),
            r * c
        );
        let mut out = self.clone();
        for i in 0..r {
            let row = &mut out.data_mut()[i * c..(i + 1) * c];
            let mrow = &mask[i * c..(i + 1) * c];
            let m = row
                .iter()
                .zip(mrow)
                .filter(|(_, &keep)| keep)
                .map(|(&v, _)| v)
                .fold(f32::NEG_INFINITY, f32::max);
            if m == f32::NEG_INFINITY {
                for v in row.iter_mut() {
                    *v = 0.0;
                }
                continue;
            }
            let mut sum = 0.0;
            for (v, &keep) in row.iter_mut().zip(mrow) {
                if keep {
                    *v = (*v - m).exp();
                    sum += *v;
                } else {
                    *v = 0.0;
                }
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_negatives() {
        let t = Tensor::new(1, 3, vec![-1., 0., 2.]);
        assert_eq!(t.relu().data(), &[0., 0., 2.]);
    }

    #[test]
    fn sigmoid_extremes_stable() {
        let t = Tensor::new(1, 3, vec![-100., 0., 100.]);
        let s = t.sigmoid();
        assert!(s.all_finite());
        assert!((s.data()[0] - 0.0).abs() < 1e-6);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!((s.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softplus_matches_definition_midrange() {
        let x = 1.3f32;
        let expect = (1.0 + x.exp()).ln();
        assert!((softplus_scalar(x) - expect).abs() < 1e-6);
        // large-x asymptote
        assert!((softplus_scalar(50.0) - 50.0).abs() < 1e-4);
        assert!(softplus_scalar(-50.0) >= 0.0);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::new(2, 3, vec![1., 2., 3., 1000., 1000., 1000.]);
        let s = t.softmax_rows();
        assert!(s.all_finite());
        for i in 0..2 {
            let sum: f32 = s.row_slice(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // monotone within row
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
        // uniform row
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn masked_softmax_excludes_masked() {
        let t = Tensor::new(1, 3, vec![5., 1., 1.]);
        let s = t.softmax_rows_masked(&[false, true, true]);
        assert_eq!(s.data()[0], 0.0);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!((s.data()[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn masked_softmax_all_masked_row_is_zero() {
        let t = Tensor::new(1, 2, vec![3., 4.]);
        let s = t.softmax_rows_masked(&[false, false]);
        assert_eq!(s.data(), &[0., 0.]);
    }

    #[test]
    fn ln_guarded_no_neg_inf() {
        let t = Tensor::new(1, 2, vec![0., 1.]);
        let l = t.ln_guarded(1e-12);
        assert!(l.all_finite());
        assert_eq!(l.data()[1], 0.0);
    }

    #[test]
    fn tanh_range() {
        let t = Tensor::new(1, 3, vec![-10., 0., 10.]);
        let h = t.tanh();
        assert!(h.data()[0] > -1.0 - 1e-6 && h.data()[0] < -0.99);
        assert_eq!(h.data()[1], 0.0);
        assert!(h.data()[2] > 0.99);
    }
}
