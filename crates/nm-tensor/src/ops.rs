//! Elementwise and broadcasting arithmetic.
//!
//! Broadcasting rules (all the paper's math requires):
//! * same shape — elementwise;
//! * `R x C (op) 1 x C` — the row vector is broadcast down the rows
//!   (bias addition);
//! * `R x C (op) R x 1` — the column vector is broadcast across columns
//!   (degree normalization, per-row gates);
//! * `R x C (op) 1 x 1` — scalar broadcast.
//!
//! Anything else panics with both shapes in the message.

use crate::Tensor;

/// How `rhs` broadcasts against `lhs`. Shared by forward ops here and by
/// the autograd backward passes (which must reduce gradients the same
/// way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Broadcast {
    Same,
    RowVector,
    ColVector,
    Scalar,
}

/// Classifies the broadcast of `rhs` onto `lhs`, or `None` if the
/// shapes are incompatible. Static analyses (`nm-check`'s shape
/// verifier) use this form to report a diagnostic instead of aborting.
pub fn try_classify_broadcast(lhs: (usize, usize), rhs: (usize, usize)) -> Option<Broadcast> {
    if lhs == rhs {
        Some(Broadcast::Same)
    } else if rhs == (1, 1) {
        Some(Broadcast::Scalar)
    } else if rhs.0 == 1 && rhs.1 == lhs.1 {
        Some(Broadcast::RowVector)
    } else if rhs.1 == 1 && rhs.0 == lhs.0 {
        Some(Broadcast::ColVector)
    } else {
        None
    }
}

/// Classifies the broadcast of `rhs` onto `lhs`, panicking on
/// incompatible shapes.
pub fn classify_broadcast(lhs: (usize, usize), rhs: (usize, usize), op: &str) -> Broadcast {
    match try_classify_broadcast(lhs, rhs) {
        Some(bc) => bc,
        None => panic!(
            "{op}: incompatible shapes {}x{} vs {}x{}",
            lhs.0, lhs.1, rhs.0, rhs.1
        ),
    }
}

impl Tensor {
    fn binary(&self, rhs: &Tensor, op: &str, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let bc = classify_broadcast(self.shape(), rhs.shape(), op);
        let (r, c) = self.shape();
        let mut out = self.clone();
        let od = out.data_mut();
        let rd = rhs.data();
        match bc {
            Broadcast::Same => {
                for (o, &b) in od.iter_mut().zip(rd) {
                    *o = f(*o, b);
                }
            }
            Broadcast::Scalar => {
                let b = rd[0];
                for o in od.iter_mut() {
                    *o = f(*o, b);
                }
            }
            Broadcast::RowVector => {
                for i in 0..r {
                    let row = &mut od[i * c..(i + 1) * c];
                    for (o, &b) in row.iter_mut().zip(rd) {
                        *o = f(*o, b);
                    }
                }
            }
            Broadcast::ColVector => {
                for i in 0..r {
                    let b = rd[i];
                    for o in &mut od[i * c..(i + 1) * c] {
                        *o = f(*o, b);
                    }
                }
            }
        }
        out
    }

    /// Elementwise/broadcast addition.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.binary(rhs, "add", |a, b| a + b)
    }

    /// Elementwise/broadcast subtraction.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.binary(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise/broadcast (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.binary(rhs, "mul", |a, b| a * b)
    }

    /// Elementwise/broadcast division.
    pub fn div(&self, rhs: &Tensor) -> Tensor {
        self.binary(rhs, "div", |a, b| a / b)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|x| -x)
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        for x in out.data_mut() {
            *x = f(*x);
        }
        out
    }

    /// In-place `self += rhs` (same shape only — the accumulation path
    /// used by gradient buffers, kept allocation-free).
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_assign: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        for (a, &b) in self.data_mut().iter_mut().zip(rhs.data()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs` (axpy).
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "axpy: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        for (a, &b) in self.data_mut().iter_mut().zip(rhs.data()) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data_mut() {
            *a *= s;
        }
    }

    /// Zeroes the tensor in place (gradient reset).
    pub fn zero_assign(&mut self) {
        for a in self.data_mut() {
            *a = 0.0;
        }
    }

    /// Clamps each element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Per-row dot product of two `R x C` tensors, producing `R x 1`.
    ///
    /// This is the user·item affinity kernel (Eq. 18 / BPR / GMF).
    pub fn rowwise_dot(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "rowwise_dot: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        let (r, c) = self.shape();
        let mut out = Tensor::zeros(r, 1);
        for i in 0..r {
            let a = self.row_slice(i);
            let b = rhs.row_slice(i);
            out.data_mut()[i] = a.iter().zip(b).map(|(x, y)| x * y).sum();
        }
        let _ = c;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::new(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::new(2, 2, vec![10., 20., 30., 40.]);
        assert_eq!(a.add(&b).data(), &[11., 22., 33., 44.]);
    }

    #[test]
    fn add_row_vector_broadcast() {
        let a = Tensor::new(2, 3, vec![0.; 6]);
        let b = Tensor::row(vec![1., 2., 3.]);
        assert_eq!(a.add(&b).data(), &[1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn mul_col_vector_broadcast() {
        let a = Tensor::ones(2, 3);
        let b = Tensor::col(vec![2., 3.]);
        assert_eq!(a.mul(&b).data(), &[2., 2., 2., 3., 3., 3.]);
    }

    #[test]
    fn scalar_broadcast() {
        let a = Tensor::new(1, 3, vec![1., 2., 3.]);
        let s = Tensor::scalar(10.0);
        assert_eq!(a.mul(&s).data(), &[10., 20., 30.]);
    }

    #[test]
    #[should_panic(expected = "incompatible shapes")]
    fn incompatible_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(3, 2);
        let _ = a.add(&b);
    }

    #[test]
    fn sub_div_neg() {
        let a = Tensor::new(1, 2, vec![4., 9.]);
        let b = Tensor::new(1, 2, vec![2., 3.]);
        assert_eq!(a.sub(&b).data(), &[2., 6.]);
        assert_eq!(a.div(&b).data(), &[2., 3.]);
        assert_eq!(a.neg().data(), &[-4., -9.]);
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::new(1, 2, vec![1., 1.]);
        let b = Tensor::new(1, 2, vec![2., 4.]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[3., 5.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[4., 7.]);
        a.zero_assign();
        assert_eq!(a.data(), &[0., 0.]);
    }

    #[test]
    fn rowwise_dot_values() {
        let a = Tensor::new(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::new(2, 2, vec![5., 6., 7., 8.]);
        let d = a.rowwise_dot(&b);
        assert_eq!(d.shape(), (2, 1));
        assert_eq!(d.data(), &[17., 53.]);
    }

    #[test]
    fn clamp_bounds() {
        let a = Tensor::new(1, 3, vec![-2., 0.5, 9.]);
        assert_eq!(a.clamp(0.0, 1.0).data(), &[0., 0.5, 1.]);
    }
}
