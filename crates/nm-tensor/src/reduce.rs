//! Reductions: sums, means, axis reductions, norms, arg-reductions.

use crate::Tensor;

/// Axis selector for reductions. `Rows` collapses the row dimension
/// (output `1 x C`); `Cols` collapses the column dimension (output
/// `R x 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    Rows,
    Cols,
}

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Axis sum. `Axis::Rows` -> `1 x C` column sums; `Axis::Cols` ->
    /// `R x 1` row sums.
    pub fn sum_axis(&self, axis: Axis) -> Tensor {
        let (r, c) = self.shape();
        match axis {
            Axis::Rows => {
                let mut out = Tensor::zeros(1, c);
                for i in 0..r {
                    let row = self.row_slice(i);
                    for (o, &v) in out.data_mut().iter_mut().zip(row) {
                        *o += v;
                    }
                }
                out
            }
            Axis::Cols => {
                let mut out = Tensor::zeros(r, 1);
                for i in 0..r {
                    out.data_mut()[i] = self.row_slice(i).iter().sum();
                }
                out
            }
        }
    }

    /// Axis mean (see [`Tensor::sum_axis`]).
    pub fn mean_axis(&self, axis: Axis) -> Tensor {
        let (r, c) = self.shape();
        let n = match axis {
            Axis::Rows => r,
            Axis::Cols => c,
        } as f32;
        let mut out = self.sum_axis(axis);
        if n > 0.0 {
            out.scale_assign(1.0 / n);
        }
        out
    }

    /// Largest element; `-inf` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element; `+inf` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the largest element in each row (`R`-element vector).
    /// Ties resolve to the first occurrence.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|i| {
                let row = self.row_slice(i);
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Frobenius / L2 norm.
    pub fn norm_l2(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of squares (cheaper than `norm_l2` squared; used by weight
    /// decay and gradient-clipping).
    pub fn sum_squares(&self) -> f32 {
        self.data().iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean() {
        let t = Tensor::new(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    fn sum_axis_rows_cols() {
        let t = Tensor::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.sum_axis(Axis::Rows).data(), &[5., 7., 9.]);
        assert_eq!(t.sum_axis(Axis::Cols).data(), &[6., 15.]);
    }

    #[test]
    fn mean_axis() {
        let t = Tensor::new(2, 2, vec![1., 3., 5., 7.]);
        assert_eq!(t.mean_axis(Axis::Rows).data(), &[3., 5.]);
        assert_eq!(t.mean_axis(Axis::Cols).data(), &[2., 6.]);
    }

    #[test]
    fn max_min() {
        let t = Tensor::new(1, 4, vec![-1., 7., 3., 0.]);
        assert_eq!(t.max(), 7.0);
        assert_eq!(t.min(), -1.0);
    }

    #[test]
    fn argmax_rows_ties_first() {
        let t = Tensor::new(2, 3, vec![1., 5., 5., 9., 2., 3.]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn norms() {
        let t = Tensor::new(1, 2, vec![3., 4.]);
        assert_eq!(t.norm_l2(), 5.0);
        assert_eq!(t.sum_squares(), 25.0);
    }

    #[test]
    fn empty_mean_is_zero() {
        let t = Tensor::zeros(0, 3);
        assert_eq!(t.mean(), 0.0);
    }
}
