use crate::{alloc, TensorError};

/// A dense, row-major `rows x cols` matrix of `f32`.
///
/// The single tensor type of the workspace. Vectors are `1 x n` or
/// `n x 1`; scalars are `1 x 1`.
#[derive(PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Self::built(self.rows, self.cols, self.data.clone())
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        alloc::on_free(self.data.len() * 4);
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        } else {
            write!(f, " [{:?}, ...]", &self.data[..8])?;
        }
        Ok(())
    }
}

impl Tensor {
    /// The single construction funnel: every fresh tensor buffer is
    /// accounted here so `alloc` sees all allocation traffic.
    #[inline]
    pub(crate) fn built(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        alloc::on_alloc(data.len() * 4);
        Self { rows, cols, data }
    }

    /// Builds a tensor from row-major data.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self::built(rows, cols, data))
    }

    /// Builds a tensor from row-major data, panicking on length mismatch.
    ///
    /// For literals in tests and internal code where the length is static.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Self::from_vec(rows, cols, data).expect("Tensor::new: data length must match shape")
    }

    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::built(rows, cols, vec![0.0; rows * cols])
    }

    /// All-ones tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self::built(rows, cols, vec![value; rows * cols])
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::new(1, 1, vec![value])
    }

    /// A `1 x n` row vector.
    pub fn row(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::new(1, n, data)
    }

    /// An `n x 1` column vector.
    pub fn col(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::new(n, 1, data)
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer. The buffer leaves the
    /// accounting domain (counted as freed here; re-wrapping it via
    /// [`Tensor::from_vec`] counts as a fresh allocation).
    pub fn into_vec(mut self) -> Vec<f32> {
        let data = std::mem::take(&mut self.data);
        alloc::on_free(data.len() * 4);
        data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// If the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert!(
            self.rows == 1 && self.cols == 1,
            "Tensor::item: expected 1x1, got {}x{}",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Returns a copy with a new shape holding the same elements.
    pub fn reshape(&self, rows: usize, cols: usize) -> Result<Self, TensorError> {
        if rows * cols != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: (self.rows, self.cols),
                to: (rows, cols),
            });
        }
        Ok(Self::built(rows, cols, self.data.clone()))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// If row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Self {
        assert_eq!(
            self.rows, other.rows,
            "concat_cols: row mismatch {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row_slice(r));
            data.extend_from_slice(other.row_slice(r));
        }
        Self::built(self.rows, cols, data)
    }

    /// Vertical concatenation (stack rows).
    ///
    /// # Panics
    /// If column counts differ.
    pub fn concat_rows(&self, other: &Tensor) -> Self {
        assert_eq!(
            self.cols, other.cols,
            "concat_rows: col mismatch {}x{} vs {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Self::built(self.rows + other.rows, self.cols, data)
    }

    /// Copy of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows: range {}..{} out of bounds ({} rows)",
            start,
            end,
            self.rows
        );
        Self::built(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Copy of columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols: range {}..{} out of bounds ({} cols)",
            start,
            end,
            self.cols
        );
        let cols = end - start;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row_slice(r)[start..end]);
        }
        Self::built(self.rows, cols, data)
    }

    /// Row gather: `out[i] = self[indices[i]]`.
    ///
    /// The core of embedding lookups.
    ///
    /// # Panics
    /// If any index is out of bounds.
    pub fn gather_rows(&self, indices: &[u32]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &ix in indices {
            let ix = ix as usize;
            assert!(
                ix < self.rows,
                "gather_rows: index {} out of bounds ({} rows)",
                ix,
                self.rows
            );
            data.extend_from_slice(self.row_slice(ix));
        }
        Self::built(indices.len(), self.cols, data)
    }

    /// Row scatter-add: `self[indices[i]] += src[i]` — the adjoint of
    /// [`Tensor::gather_rows`]. Duplicate indices accumulate.
    ///
    /// # Panics
    /// If shapes disagree or any index is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[u32], src: &Tensor) {
        assert_eq!(
            indices.len(),
            src.rows,
            "scatter_add_rows: {} indices vs {} src rows",
            indices.len(),
            src.rows
        );
        assert_eq!(
            self.cols, src.cols,
            "scatter_add_rows: col mismatch {} vs {}",
            self.cols, src.cols
        );
        for (i, &ix) in indices.iter().enumerate() {
            let ix = ix as usize;
            assert!(
                ix < self.rows,
                "scatter_add_rows: index {} out of bounds ({} rows)",
                ix,
                self.rows
            );
            let dst = &mut self.data[ix * self.cols..(ix + 1) * self.cols];
            let s = src.row_slice(i);
            for (d, v) in dst.iter_mut().zip(s) {
                *d += v;
            }
        }
    }

    /// True if every element is finite (no NaN/inf). Used by training
    /// assertions and tests.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute elementwise difference against `other`.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn eye_diagonal() {
        let t = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(t.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.transpose().transpose();
        assert_eq!(t, tt);
    }

    #[test]
    fn transpose_values() {
        let t = Tensor::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let tr = t.transpose();
        assert_eq!(tr.shape(), (3, 2));
        assert_eq!(tr.get(0, 1), 4.0);
        assert_eq!(tr.get(2, 0), 3.0);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::new(2, 1, vec![1., 2.]);
        let b = Tensor::new(2, 2, vec![3., 4., 5., 6.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1., 3., 4., 2., 5., 6.]);
    }

    #[test]
    fn concat_rows_layout() {
        let a = Tensor::new(1, 2, vec![1., 2.]);
        let b = Tensor::new(2, 2, vec![3., 4., 5., 6.]);
        let c = a.concat_rows(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.data(), &[1., 2., 3., 4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "concat_cols")]
    fn concat_cols_mismatch_panics() {
        let a = Tensor::zeros(2, 1);
        let b = Tensor::zeros(3, 1);
        let _ = a.concat_cols(&b);
    }

    #[test]
    fn slice_rows_and_cols() {
        let t = Tensor::new(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.data(), &[3., 4., 5., 6.]);
        let c = t.slice_cols(1, 2);
        assert_eq!(c.data(), &[2., 4., 6.]);
    }

    #[test]
    fn gather_then_scatter_add_is_adjoint_shapewise() {
        let table = Tensor::new(3, 2, vec![1., 1., 2., 2., 3., 3.]);
        let g = table.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[3., 3., 1., 1., 3., 3.]);
        let mut acc = Tensor::zeros(3, 2);
        acc.scatter_add_rows(&[2, 0, 2], &g);
        // row 2 accumulated twice
        assert_eq!(acc.row_slice(2), &[6., 6.]);
        assert_eq!(acc.row_slice(0), &[1., 1.]);
        assert_eq!(acc.row_slice(1), &[0., 0.]);
    }

    #[test]
    fn reshape_checks_count() {
        let t = Tensor::zeros(2, 3);
        assert!(t.reshape(3, 2).is_ok());
        assert!(t.reshape(4, 2).is_err());
    }

    #[test]
    fn item_scalar() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    #[should_panic(expected = "expected 1x1")]
    fn item_non_scalar_panics() {
        let _ = Tensor::zeros(2, 1).item();
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros(1, 2);
        assert!(t.all_finite());
        t.set(0, 1, f32::NAN);
        assert!(!t.all_finite());
    }
}
