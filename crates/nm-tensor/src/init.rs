//! Random tensor initialization.
//!
//! All randomness in the workspace flows through seeded [`TensorRng`]
//! handles so every experiment is bit-for-bit reproducible (DESIGN.md,
//! "Determinism").

use crate::rng::{Rng, SeedableRng, StdRng};
use crate::Tensor;

/// A seeded RNG for tensor initialization.
///
/// Thin wrapper over `StdRng` so downstream crates never depend on the
/// concrete RNG choice.
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG (used to give each module its
    /// own stream so adding a module never shifts another's init).
    pub fn fork(&mut self, salt: u64) -> Self {
        let s: u64 = self.rng.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::seed_from(s)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.rng.gen_range(lo..hi)
    }

    /// Standard normal sample (Box–Muller; avoids a rand_distr dep).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = self.rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
            if z.is_finite() {
                return z;
            }
        }
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "TensorRng::index: empty range");
        self.rng.gen_range(0..n)
    }

    /// Uniform `f64` in `[0,1)` (dataset generator probabilities).
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Access the underlying RNG for crates that need distributions.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl Tensor {
    /// Tensor with i.i.d. `N(0, std^2)` entries.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut TensorRng) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data_mut() {
            *v = rng.normal() * std;
        }
        t
    }

    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut TensorRng) -> Tensor {
        let mut t = Tensor::zeros(rows, cols);
        for v in t.data_mut() {
            *v = rng.uniform(lo, hi);
        }
        t
    }

    /// Xavier/Glorot uniform init for a `fan_in x fan_out` weight matrix.
    pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(fan_in, fan_out, -bound, bound, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        let ta = Tensor::randn(3, 3, 1.0, &mut a);
        let tb = Tensor::randn(3, 3, 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        let ta = Tensor::randn(4, 4, 1.0, &mut a);
        let tb = Tensor::randn(4, 4, 1.0, &mut b);
        assert!(ta.max_abs_diff(&tb) > 0.0);
    }

    #[test]
    fn fork_streams_are_independent_of_later_use() {
        let mut root1 = TensorRng::seed_from(42);
        let mut c1 = root1.fork(1);
        let v1 = Tensor::randn(2, 2, 1.0, &mut c1);

        let mut root2 = TensorRng::seed_from(42);
        let mut c2 = root2.fork(1);
        // extra draws from root2 after forking must not change c2's stream
        let _ = root2.normal();
        let v2 = Tensor::randn(2, 2, 1.0, &mut c2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = TensorRng::seed_from(123);
        let n = 20_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let x = rng.normal() as f64;
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = TensorRng::seed_from(5);
        let t = Tensor::xavier_uniform(64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(t.max() <= bound && t.min() >= -bound);
    }

    #[test]
    fn uniform_in_range() {
        let mut rng = TensorRng::seed_from(9);
        let t = Tensor::rand_uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(t.max() < 0.5 && t.min() >= -0.5);
    }
}
