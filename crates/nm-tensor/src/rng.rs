//! Vendored pseudo-random number generation (PCG32, O'Neill 2014).
//!
//! The workspace builds fully offline, so instead of depending on the
//! external `rand` crate this module provides the exact API surface the
//! workspace's call-sites use: [`StdRng`] + [`SeedableRng`] + [`Rng`]
//! with `gen`/`gen_range`, [`seq::SliceRandom::shuffle`], and
//! [`seq::index::sample`]. Streams are deterministic per seed (the
//! DESIGN.md "Determinism" contract); they differ from `rand`'s ChaCha12
//! streams, which only shifts which synthetic dataset a seed denotes.

/// Seeding by `u64`, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Raw generator output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased integer in `[0, span)` via rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject draws in the short final partial cycle of u64 % span.
    let threshold = span.wrapping_neg() % span;
    loop {
        let r = rng.next_u64();
        if r >= threshold {
            return r % span;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u32, u64);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let u = f32::from_rng(rng);
        let v = lo + (hi - lo) * u;
        // Guard the (rounding-only) upper edge so the half-open contract holds.
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let u = f64::from_rng(rng);
        let v = lo + (hi - lo) * u;
        if v < hi {
            v
        } else {
            lo
        }
    }
}

/// The convenience sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// PCG32 (XSH-RR 64/32): 64-bit LCG state, 32-bit permuted output.
/// Small, fast, passes BigCrush far beyond what experiment seeding needs.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
    inc: u64,
}

const PCG_MUL: u64 = 6364136223846793005;

/// SplitMix64 — expands one u64 seed into independent stream parameters.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let initstate = splitmix64(&mut sm);
        let initseq = splitmix64(&mut sm);
        let mut rng = StdRng {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

/// Sequence helpers mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place slice operations, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement, mirroring `rand::seq::index`.
    pub mod index {
        use super::super::Rng;

        /// Samples `amount` distinct indices from `0..length`, in random
        /// order. Partial Fisher–Yates for dense requests, rejection
        /// sampling for sparse ones.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> Vec<usize> {
            assert!(
                amount <= length,
                "index::sample: amount {amount} > length {length}"
            );
            if amount == 0 {
                return Vec::new();
            }
            if amount * 3 >= length {
                let mut idx: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    idx.swap(i, j);
                }
                idx.truncate(amount);
                idx
            } else {
                let mut seen = std::collections::HashSet::with_capacity(amount);
                let mut out = Vec::with_capacity(amount);
                while out.len() < amount {
                    let x = rng.gen_range(0..length);
                    if seen.insert(x) {
                        out.push(x);
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{index, SliceRandom};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_int_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            seen[x - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 3..10 reachable");
    }

    #[test]
    fn gen_range_float_half_open() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&x));
            let y: f64 = rng.gen_range(0.0f64..1e-3);
            assert!((0.0..1e-3).contains(&y));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for (len, k) in [(10, 10), (100, 3), (8, 5), (1000, 2)] {
            let s = index::sample(&mut rng, len, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(s.iter().all(|&i| i < len));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}
