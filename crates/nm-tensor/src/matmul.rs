//! Dense matrix multiplication kernels.
//!
//! `ikj` loop order keeps the inner loop streaming over contiguous rows
//! of both the output and `rhs`, which LLVM auto-vectorizes. The
//! transpose-fused variants avoid materializing transposed operands in
//! the autograd backward pass.

use crate::Tensor;

impl Tensor {
    /// `self (R x K) * rhs (K x C) -> R x C`.
    ///
    /// # Panics
    /// On inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul: inner dim mismatch {}x{} * {}x{}",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let (r, k) = self.shape();
        let c = rhs.cols();
        let mut out = Tensor::zeros(r, c);
        let a = self.data();
        let b = rhs.data();
        let o = out.data_mut();
        for i in 0..r {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * c..(i + 1) * c];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * c..(kk + 1) * c];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
        out
    }

    /// `self^T (K x R)^T=(R x K? no) …` — computes `self.transpose() * rhs`
    /// without materializing the transpose: `self (K x R), rhs (K x C) -> R x C`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows(),
            rhs.rows(),
            "matmul_tn: dim mismatch {}x{} ^T * {}x{}",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let (k, r) = self.shape();
        let c = rhs.cols();
        let mut out = Tensor::zeros(r, c);
        let a = self.data();
        let b = rhs.data();
        let o = out.data_mut();
        // out[i][j] = sum_k a[k][i] * b[k][j]
        for kk in 0..k {
            let arow = &a[kk * r..(kk + 1) * r];
            let brow = &b[kk * c..(kk + 1) * c];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut o[i * c..(i + 1) * c];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
        out
    }

    /// Computes `self * rhs.transpose()` without materializing the
    /// transpose: `self (R x K), rhs (C x K) -> R x C`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            rhs.cols(),
            "matmul_nt: dim mismatch {}x{} * {}x{} ^T",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let (r, k) = self.shape();
        let c = rhs.rows();
        let mut out = Tensor::zeros(r, c);
        let a = self.data();
        let b = rhs.data();
        let o = out.data_mut();
        for i in 0..r {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * c..(i + 1) * c];
            for (j, ov) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                *ov = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            }
        }
        out
    }
}

/// Column-block width for the serving vector kernels: 64 f32 = 256 B,
/// four cache lines, small enough that `x` stays resident.
const VEC_BLOCK: usize = 64;

/// Blocked row-vector × matrix: `x (1 x k) * w (k x n) -> 1 x n`,
/// `out[j] += bias[j]` after the full accumulation.
///
/// Bit-for-bit compatible with `Tensor::matmul` on a `1 x k` lhs
/// followed by a broadcast add: per output element the sum runs over
/// `k` ascending and skips `x[kk] == 0.0` exactly like the `ikj`
/// kernel above, and blocking only partitions the `j` axis, which
/// never reorders any single element's accumulation.
pub fn vecmat_blocked(x: &[f32], w: &[f32], k: usize, n: usize, bias: Option<&[f32]>) -> Vec<f32> {
    assert_eq!(x.len(), k, "vecmat_blocked: x len {} != k {k}", x.len());
    assert_eq!(
        w.len(),
        k * n,
        "vecmat_blocked: w len {} != {k}x{n}",
        w.len()
    );
    let mut out = vec![0.0f32; n];
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + VEC_BLOCK).min(n);
        let oblk = &mut out[j0..j1];
        for (kk, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let wblk = &w[kk * n + j0..kk * n + j1];
            for (ov, &wv) in oblk.iter_mut().zip(wblk) {
                *ov += xv * wv;
            }
        }
        j0 = j1;
    }
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "vecmat_blocked: bias len {} != n {n}", b.len());
        for (ov, &bv) in out.iter_mut().zip(b) {
            *ov += bv;
        }
    }
    out
}

/// Blocked row-vector × matrix-transpose: dots `x (1 x k)` against each
/// of the `n_rows` length-`k` rows of `rows`, i.e. `x * rows^T`.
///
/// Per output element this is a plain sequential `k`-ascending dot with
/// no zero skip — the exact accumulation `Tensor::matmul_nt` and the
/// model layer's embedding dot-product scoring use — so serving scores
/// match offline scores bit for bit.
pub fn vecmat_nt_blocked(
    x: &[f32],
    rows: &[f32],
    n_rows: usize,
    k: usize,
    bias: Option<&[f32]>,
) -> Vec<f32> {
    assert_eq!(x.len(), k, "vecmat_nt_blocked: x len {} != k {k}", x.len());
    assert_eq!(
        rows.len(),
        n_rows * k,
        "vecmat_nt_blocked: rows len {} != {n_rows}x{k}",
        rows.len()
    );
    let mut out = vec![0.0f32; n_rows];
    let mut i0 = 0;
    while i0 < n_rows {
        let i1 = (i0 + VEC_BLOCK).min(n_rows);
        for i in i0..i1 {
            let row = &rows[i * k..(i + 1) * k];
            out[i] = x.iter().zip(row).map(|(a, b)| a * b).sum();
        }
        i0 = i1;
    }
    if let Some(b) = bias {
        assert_eq!(
            b.len(),
            n_rows,
            "vecmat_nt_blocked: bias len {} != n_rows {n_rows}",
            b.len()
        );
        for (ov, &bv) in out.iter_mut().zip(b) {
            *ov += bv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::new(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::new(2, 2, vec![5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&Tensor::eye(3)).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::new(1, 3, vec![1., 2., 3.]);
        let b = Tensor::new(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        assert_eq!(a.matmul(&b).data(), &[4., 5.]);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_mismatch_panics() {
        let _ = Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::new(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new(3, 4, (0..12).map(|x| x as f32).collect());
        let expect = a.transpose().matmul(&b);
        let got = a.matmul_tn(&b);
        assert!(expect.max_abs_diff(&got) < 1e-6);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new(4, 3, (0..12).map(|x| x as f32).collect());
        let expect = a.matmul(&b.transpose());
        let got = a.matmul_nt(&b);
        assert!(expect.max_abs_diff(&got) < 1e-6);
    }

    #[test]
    fn vecmat_blocked_bitwise_matches_matmul() {
        // Spans several blocks (n > VEC_BLOCK) and includes exact zeros
        // in x so the skip path is exercised.
        let mut rng = TensorRng::seed_from(11);
        let k = 37;
        let n = 150;
        let mut x = Tensor::randn(1, k, 1.0, &mut rng);
        x.data_mut()[3] = 0.0;
        x.data_mut()[k - 1] = 0.0;
        let w = Tensor::randn(k, n, 1.0, &mut rng);
        let b = Tensor::randn(1, n, 1.0, &mut rng);
        let reference = x.matmul(&w).add(&b);
        let got = vecmat_blocked(x.data(), w.data(), k, n, Some(b.data()));
        assert_eq!(got.as_slice(), reference.data(), "must match bit for bit");
        let no_bias = vecmat_blocked(x.data(), w.data(), k, n, None);
        assert_eq!(no_bias.as_slice(), x.matmul(&w).data());
    }

    #[test]
    fn vecmat_nt_blocked_bitwise_matches_matmul_nt() {
        let mut rng = TensorRng::seed_from(12);
        let k = 29;
        let n_rows = 200;
        let x = Tensor::randn(1, k, 1.0, &mut rng);
        let rows = Tensor::randn(n_rows, k, 1.0, &mut rng);
        let reference = x.matmul_nt(&rows);
        let got = vecmat_nt_blocked(x.data(), rows.data(), n_rows, k, None);
        assert_eq!(got.as_slice(), reference.data(), "must match bit for bit");
    }

    #[test]
    #[should_panic(expected = "vecmat_blocked: w len")]
    fn vecmat_blocked_shape_mismatch_panics() {
        let _ = vecmat_blocked(&[1.0, 2.0], &[1.0; 5], 2, 3, None);
    }
}
