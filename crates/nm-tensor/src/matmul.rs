//! Dense matrix multiplication kernels.
//!
//! `ikj` loop order keeps the inner loop streaming over contiguous rows
//! of both the output and `rhs`, which LLVM auto-vectorizes. The
//! transpose-fused variants avoid materializing transposed operands in
//! the autograd backward pass.

use crate::Tensor;

impl Tensor {
    /// `self (R x K) * rhs (K x C) -> R x C`.
    ///
    /// # Panics
    /// On inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul: inner dim mismatch {}x{} * {}x{}",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let (r, k) = self.shape();
        let c = rhs.cols();
        let mut out = Tensor::zeros(r, c);
        let a = self.data();
        let b = rhs.data();
        let o = out.data_mut();
        for i in 0..r {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * c..(i + 1) * c];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[kk * c..(kk + 1) * c];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
        out
    }

    /// `self^T (K x R)^T=(R x K? no) …` — computes `self.transpose() * rhs`
    /// without materializing the transpose: `self (K x R), rhs (K x C) -> R x C`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.rows(),
            rhs.rows(),
            "matmul_tn: dim mismatch {}x{} ^T * {}x{}",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let (k, r) = self.shape();
        let c = rhs.cols();
        let mut out = Tensor::zeros(r, c);
        let a = self.data();
        let b = rhs.data();
        let o = out.data_mut();
        // out[i][j] = sum_k a[k][i] * b[k][j]
        for kk in 0..k {
            let arow = &a[kk * r..(kk + 1) * r];
            let brow = &b[kk * c..(kk + 1) * c];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut o[i * c..(i + 1) * c];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
        out
    }

    /// Computes `self * rhs.transpose()` without materializing the
    /// transpose: `self (R x K), rhs (C x K) -> R x C`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            rhs.cols(),
            "matmul_nt: dim mismatch {}x{} * {}x{} ^T",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let (r, k) = self.shape();
        let c = rhs.rows();
        let mut out = Tensor::zeros(r, c);
        let a = self.data();
        let b = rhs.data();
        let o = out.data_mut();
        for i in 0..r {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * c..(i + 1) * c];
            for (j, ov) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                *ov = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::new(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::new(2, 2, vec![5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&Tensor::eye(3)).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::new(1, 3, vec![1., 2., 3.]);
        let b = Tensor::new(3, 2, vec![1., 0., 0., 1., 1., 1.]);
        assert_eq!(a.matmul(&b).data(), &[4., 5.]);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_mismatch_panics() {
        let _ = Tensor::zeros(2, 3).matmul(&Tensor::zeros(2, 3));
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::new(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new(3, 4, (0..12).map(|x| x as f32).collect());
        let expect = a.transpose().matmul(&b);
        let got = a.matmul_tn(&b);
        assert!(expect.max_abs_diff(&got) < 1e-6);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::new(4, 3, (0..12).map(|x| x as f32).collect());
        let expect = a.matmul(&b.transpose());
        let got = a.matmul_nt(&b);
        assert!(expect.max_abs_diff(&got) < 1e-6);
    }
}
