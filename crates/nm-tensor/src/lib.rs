//! # nm-tensor
//!
//! Dense `f32` tensor engine underpinning the NMCDR reproduction.
//!
//! Every tensor is logically two-dimensional (`rows x cols`, row-major).
//! Vectors are represented as `1 x n` (row vector) or `n x 1` (column
//! vector); this restriction keeps shape semantics trivial and is all the
//! paper's math needs (embedding matrices, message matrices, gates).
//!
//! Design notes (following the workspace coding guides):
//! * Shape mismatches are programmer errors and **panic** with a message
//!   naming the op and both shapes — the same contract `ndarray` uses.
//! * Fallible *data-driven* constructors (`Tensor::from_vec`) return
//!   [`TensorError`] instead.
//! * Hot loops (`matmul`, elementwise kernels) are written over raw
//!   slices so the optimizer can vectorize; no `Rc`/indirection inside.

pub mod alloc;

mod activations;
mod error;
mod init;
mod matmul;
mod ops;
mod reduce;
pub mod rng;
mod tensor;

pub use activations::{sigmoid_scalar, softplus_scalar};
pub use error::TensorError;
pub use init::TensorRng;
pub use matmul::{vecmat_blocked, vecmat_nt_blocked};
pub use ops::{classify_broadcast, try_classify_broadcast, Broadcast};
pub use reduce::Axis;
pub use tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::eye(2);
        let c = a.matmul(&b);
        assert_eq!(c.data(), a.data());
    }
}
