//! Allocation observability for tensor buffers.
//!
//! Every `Tensor` buffer creation funnels through
//! `Tensor::built`/`Clone` and every release through `Drop`/`into_vec`,
//! so four process-global counters can account for tensor memory
//! exactly: cumulative bytes allocated, cumulative bytes freed, live
//! bytes, and the peak of live bytes. The kernel profiler in
//! `nm-autograd` samples the cumulative counters around each op to
//! attribute allocation traffic per op kind.
//!
//! Discipline matches the PR 3 tracer: disabled (the default), every
//! hook is a single relaxed atomic load; enabled, hooks are a few
//! relaxed RMWs — cheap enough to leave on for a whole training run.
//! All ordering is `Relaxed`: the counters are statistics, not
//! synchronization, and the training loop that reads them is
//! single-threaded, which is also what makes the recorded byte counts
//! deterministic for a fixed seed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Whether tensor-buffer accounting is on. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns accounting on or off. Enabling does not reset the counters;
/// call [`reset`] first for a clean window.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zeroes all four counters (start of a measurement window).
pub fn reset() {
    ALLOCATED.store(0, Ordering::Relaxed);
    FREED.store(0, Ordering::Relaxed);
    LIVE.store(0, Ordering::Relaxed);
    PEAK.store(0, Ordering::Relaxed);
}

/// Point-in-time view of the accounting counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Cumulative bytes of tensor buffers created since [`reset`].
    pub allocated_b: u64,
    /// Cumulative bytes of tensor buffers released since [`reset`].
    pub freed_b: u64,
    /// Bytes currently held by live tensors.
    pub live_b: u64,
    /// High-water mark of `live_b`.
    pub peak_b: u64,
}

/// Reads all counters (relaxed; exact on the single training thread).
pub fn stats() -> AllocStats {
    AllocStats {
        allocated_b: ALLOCATED.load(Ordering::Relaxed),
        freed_b: FREED.load(Ordering::Relaxed),
        live_b: LIVE.load(Ordering::Relaxed),
        peak_b: PEAK.load(Ordering::Relaxed),
    }
}

/// `(allocated, freed)` cumulative counters — the cheap pair the
/// per-op profiler deltas around each kernel call.
#[inline]
pub fn counters() -> (u64, u64) {
    (
        ALLOCATED.load(Ordering::Relaxed),
        FREED.load(Ordering::Relaxed),
    )
}

#[inline]
pub(crate) fn on_alloc(bytes: usize) {
    if !enabled() {
        return;
    }
    let b = bytes as u64;
    ALLOCATED.fetch_add(b, Ordering::Relaxed);
    let live = LIVE.fetch_add(b, Ordering::Relaxed) + b;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
pub(crate) fn on_free(bytes: usize) {
    if !enabled() {
        return;
    }
    let b = bytes as u64;
    FREED.fetch_add(b, Ordering::Relaxed);
    // Saturating: tensors created before accounting was enabled may be
    // freed inside the window; they must not wrap the live gauge.
    let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(b))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    // The counters are process-global, so the accounting tests share
    // one lock to keep other-threaded tensor traffic out of the window.
    fn with_window<R>(f: impl FnOnce() -> R) -> R {
        use std::sync::Mutex;
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        r
    }

    #[test]
    fn construction_and_drop_balance() {
        let s = with_window(|| {
            let t = Tensor::zeros(4, 8); // 128 bytes
            let u = t.clone(); // +128
            drop(t);
            drop(u);
            stats()
        });
        assert_eq!(s.allocated_b, 256);
        assert_eq!(s.freed_b, 256);
        assert_eq!(s.live_b, 0);
        assert_eq!(s.peak_b, 256);
    }

    #[test]
    fn into_vec_releases_the_buffer() {
        let s = with_window(|| {
            let t = Tensor::ones(2, 2); // 16 bytes
            let v = t.into_vec();
            assert_eq!(v.len(), 4);
            stats()
        });
        assert_eq!(s.allocated_b, 16);
        assert_eq!(s.freed_b, 16);
        assert_eq!(s.live_b, 0);
    }

    #[test]
    fn peak_tracks_the_high_water_mark() {
        let s = with_window(|| {
            let a = Tensor::zeros(10, 10); // 400
            {
                let _b = Tensor::zeros(10, 10); // peak 800
            }
            let _c = Tensor::zeros(1, 1); // live 404 < peak
            drop(a);
            stats()
        });
        assert_eq!(s.peak_b, 800);
    }

    #[test]
    fn disabled_counters_stay_put() {
        // No window lock needed: we only assert the *disabled* path
        // records nothing, using a before/after delta of zero traffic.
        set_enabled(false);
        let before = counters();
        let t = Tensor::zeros(16, 16);
        drop(t);
        assert_eq!(counters(), before);
    }

    #[test]
    fn pre_window_tensors_cannot_underflow_live() {
        let t = Tensor::zeros(8, 8); // created outside the window
        let s = with_window(|| {
            drop(t);
            stats()
        });
        assert_eq!(s.live_b, 0, "freeing a pre-window tensor saturates");
        assert_eq!(s.freed_b, 256);
    }
}
