//! # nm-sync
//!
//! The workspace's concurrent cores — the leader–follower batch
//! coalescer, connection-slot semaphore, slowest-N exemplar ring,
//! circuit-breaker bank, supervisor respawn path, and telemetry
//! delta-sampler ring — written once as *generic* algorithms over a
//! [`Backend`] trait.
//!
//! Production (`nm-serve`, `nm-obs`) instantiates every core with the
//! zero-cost [`StdBackend`], whose monitor is a plain
//! `std::sync::Mutex` + `Condvar` pair with the workspace's
//! poison-tolerant lock discipline. `nm-check` instantiates the *same
//! algorithm code* with a virtual backend whose lock acquisitions,
//! condvar waits, and atomic operations are scheduling points for its
//! mini-loom DFS explorer — so the schedule space that gets model
//! checked is the schedule space of the shipping code, not of a
//! hand-written mirror.
//!
//! Every core carries an always-compiled, default-off *defect knob*
//! (the same style as `nm-serve`'s chaos injection): a constructor
//! that reintroduces the exact concurrency bug the algorithm is
//! written to avoid. The negative suite in `nm-check` proves the
//! virtualized explorer catches each knob in the real core.
//!
//! Inside the core modules all blocking and shared-state access MUST
//! flow through the backend: the workspace lint bans `std::sync` /
//! `std::thread` tokens in every `nm-sync` source file except
//! `backend.rs` (enforced by `lint/no-raw-sync`), so checker coverage
//! cannot silently erode.

pub mod backend;
pub mod breaker;
pub mod coalesce;
pub mod deltaring;
pub mod semaphore;
pub mod slowring;
pub mod supervise;

pub use backend::{AtomicBoolCell, AtomicU64Cell, Backend, Monitor, StdBackend};
pub use breaker::{
    Admission, BreakerBank, BreakerBug, BreakerConfig, BreakerState, ShardBreakers, Transition,
};
pub use coalesce::{BatchQueue, CoalesceBug, Slot};
pub use deltaring::{DeltaBug, DeltaRing};
pub use semaphore::{ConnGate, GateBug};
pub use slowring::{Ranked, RingBug, SlowRing};
pub use supervise::{ChildCell, RespawnBug, RespawnCore};
