//! The `SyncBackend` contract and its production implementation.
//!
//! A [`Backend`] supplies the three things a concurrent core is
//! allowed to do: enter a monitor region ([`Monitor::with`]), block on
//! a monitor's condition ([`Monitor::wait_until`] /
//! [`Monitor::wait_deadline`]), and touch lock-free cells
//! ([`AtomicU64Cell`], [`AtomicBoolCell`]). [`Backend::sched_point`]
//! marks a place where *other threads may run* — a no-op in
//! production, a preemption opportunity under nm-check's virtual
//! backend.
//!
//! This file is the only module in `nm-sync` permitted to name
//! `std::sync` / `std::thread` (the `lint/no-raw-sync` rule enforces
//! that); everything the core algorithms do must flow through these
//! traits so the model checker sees every synchronization event.

use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A fused mutex + condvar over one protected value. Every core in
/// this crate uses at most one condition per mutex, so fusing them
/// keeps the contract small and makes "which condvar pairs with which
/// lock" impossible to get wrong.
pub trait Monitor<T: Send>: Send + Sync {
    fn new(value: T) -> Self;

    /// Runs `f` with the monitor held: one atomic region. Everything
    /// `f` does is invisible-in-part to other threads.
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;

    /// Blocks until `f` returns `Some`. `f` runs with the monitor
    /// held; between attempts the thread sleeps on the monitor's
    /// condition and is woken by [`Monitor::notify_all`].
    fn wait_until<R>(&self, f: impl FnMut(&mut T) -> Option<R>) -> R;

    /// [`Monitor::wait_until`] with a deadline: between attempts,
    /// `budget()` is consulted — `None` means wait unbounded,
    /// `Some(d)` bounds the next sleep by `d` after first checking
    /// `expired()` (returning `None` overall once expired). The
    /// virtual backend treats bounded waits as unbounded — timeouts
    /// are a liveness escape, not part of the safety contract — and
    /// honours only the deterministic `expired()` predicate.
    fn wait_deadline<R>(
        &self,
        f: impl FnMut(&mut T) -> Option<R>,
        expired: impl FnMut() -> bool,
        budget: impl FnMut() -> Option<Duration>,
    ) -> Option<R>;

    /// Wakes every thread blocked in `wait_until` / `wait_deadline`.
    fn notify_all(&self);
}

/// A monotonically writable 64-bit cell (sequence numbers, ids).
pub trait AtomicU64Cell: Send + Sync {
    fn new(v: u64) -> Self;
    fn load(&self) -> u64;
    fn store(&self, v: u64);
    /// Returns the previous value.
    fn fetch_add(&self, v: u64) -> u64;
}

/// A boolean flag cell (stop/abort signals).
pub trait AtomicBoolCell: Send + Sync {
    fn new(v: bool) -> Self;
    fn load(&self) -> bool;
    fn store(&self, v: bool);
}

/// The full backend a core is generic over.
pub trait Backend: 'static {
    type Monitor<T: Send>: Monitor<T>;
    type AtomicU64: AtomicU64Cell;
    type AtomicBool: AtomicBoolCell;

    /// A scheduling point: other threads may run here. Production is
    /// a no-op (the hardware preempts wherever it likes anyway); the
    /// virtual backend yields to its scheduler so the DFS explorer
    /// can branch.
    fn sched_point();
}

// ---------------------------------------------------------------------------
// StdBackend: the zero-cost production instantiation.
// ---------------------------------------------------------------------------

/// Poison-tolerant lock acquisition, same discipline as
/// `nm-serve::sync` / `nm-obs::sync`: a panicking holder must not
/// wedge the process — the protected state is always either fully
/// updated or reconstructible, so we adopt it and move on.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `std::sync::Mutex` + `Condvar` monitor. `with` compiles to exactly
/// the lock/unlock pair the pre-extraction code wrote by hand.
pub struct StdMonitor<T> {
    mu: Mutex<T>,
    cv: Condvar,
}

impl<T: Send> Monitor<T> for StdMonitor<T> {
    fn new(value: T) -> Self {
        Self {
            mu: Mutex::new(value),
            cv: Condvar::new(),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut lock_recover(&self.mu))
    }

    fn wait_until<R>(&self, mut f: impl FnMut(&mut T) -> Option<R>) -> R {
        let mut g = lock_recover(&self.mu);
        loop {
            if let Some(r) = f(&mut g) {
                return r;
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn wait_deadline<R>(
        &self,
        mut f: impl FnMut(&mut T) -> Option<R>,
        mut expired: impl FnMut() -> bool,
        mut budget: impl FnMut() -> Option<Duration>,
    ) -> Option<R> {
        let mut g = lock_recover(&self.mu);
        loop {
            if let Some(r) = f(&mut g) {
                return Some(r);
            }
            match budget() {
                None => {
                    g = match self.cv.wait(g) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                Some(b) => {
                    if expired() {
                        return None;
                    }
                    g = match self.cv.wait_timeout(g, b) {
                        Ok((g, _)) => g,
                        Err(poisoned) => poisoned.into_inner().0,
                    };
                }
            }
        }
    }

    fn notify_all(&self) {
        self.cv.notify_all();
    }
}

pub struct StdAtomicU64(std::sync::atomic::AtomicU64);

impl AtomicU64Cell for StdAtomicU64 {
    fn new(v: u64) -> Self {
        Self(std::sync::atomic::AtomicU64::new(v))
    }
    fn load(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
    fn store(&self, v: u64) {
        self.0.store(v, Ordering::Release)
    }
    fn fetch_add(&self, v: u64) -> u64 {
        self.0.fetch_add(v, Ordering::Relaxed)
    }
}

pub struct StdAtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBoolCell for StdAtomicBool {
    fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }
    fn load(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
    fn store(&self, v: bool) {
        self.0.store(v, Ordering::Release)
    }
}

/// The production backend: plain `std::sync`, no scheduling hooks.
pub struct StdBackend;

impl Backend for StdBackend {
    type Monitor<T: Send> = StdMonitor<T>;
    type AtomicU64 = StdAtomicU64;
    type AtomicBool = StdAtomicBool;

    #[inline(always)]
    fn sched_point() {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn monitor_with_is_exclusive() {
        let m = Arc::new(StdMonitor::new(0u64));
        let mut hs = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            hs.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.with(|v| *v += 1);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(m.with(|v| *v), 4000);
    }

    #[test]
    fn wait_until_observes_notify() {
        let m = Arc::new(StdMonitor::new(false));
        let waiter = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || m.wait_until(|v| v.then_some(42)))
        };
        std::thread::sleep(Duration::from_millis(5));
        m.with(|v| *v = true);
        m.notify_all();
        assert_eq!(waiter.join().unwrap(), 42);
    }

    #[test]
    fn wait_deadline_expires_without_notify() {
        let m = StdMonitor::new(false);
        let start = Instant::now();
        let r: Option<u32> = m.wait_deadline(
            |v| v.then_some(1),
            || start.elapsed() > Duration::from_millis(10),
            || Some(Duration::from_millis(2)),
        );
        assert_eq!(r, None);
    }

    #[test]
    fn wait_deadline_unbounded_budget_blocks_until_notify() {
        let m = Arc::new(StdMonitor::new(false));
        let waiter = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || m.wait_deadline(|v| v.then_some(7), || false, || None))
        };
        std::thread::sleep(Duration::from_millis(5));
        m.with(|v| *v = true);
        m.notify_all();
        assert_eq!(waiter.join().unwrap(), Some(7));
    }

    #[test]
    fn atomic_cells_roundtrip() {
        let a = StdAtomicU64::new(5);
        assert_eq!(a.fetch_add(3), 5);
        assert_eq!(a.load(), 8);
        a.store(1);
        assert_eq!(a.load(), 1);
        let b = StdAtomicBool::new(false);
        b.store(true);
        assert!(b.load());
    }
}
