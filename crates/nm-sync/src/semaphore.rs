//! The connection-slot semaphore guarding the accept loop.
//!
//! A bounded counter with non-blocking acquire (over-limit arrivals
//! are *shed*, never queued — load shedding is a first-class serving
//! mode) and a blocking [`ConnGate::wait_idle`] used by graceful
//! shutdown. The admission check and the increment share one monitor
//! region; splitting them ([`GateBug::CheckThenAct`]) lets two
//! connections both observe a free slot and both take it, breaching
//! the configured ceiling.

use crate::backend::{Backend, Monitor};

/// Default-off defect knob for the gate (negative-suite only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateBug {
    None,
    /// Admission checks capacity in one region and increments in
    /// another, admitting over capacity under contention.
    CheckThenAct,
}

pub struct ConnGate<B: Backend> {
    active: B::Monitor<usize>,
    max: usize,
    bug: GateBug,
}

impl<B: Backend> ConnGate<B> {
    pub fn new(max: usize) -> Self {
        Self::with_bug(max, GateBug::None)
    }

    pub fn with_bug(max: usize, bug: GateBug) -> Self {
        Self {
            active: B::Monitor::new(0),
            max: max.max(1),
            bug,
        }
    }

    /// Takes a slot if one is free; `false` means shed the arrival.
    pub fn try_acquire(&self) -> bool {
        match self.bug {
            GateBug::None => self.active.with(|n| {
                if *n >= self.max {
                    false
                } else {
                    *n += 1;
                    true
                }
            }),
            GateBug::CheckThenAct => {
                // Defect: the observation and the claim are separate
                // regions; another thread can take the last slot in
                // between and both end up admitted.
                let free = self.active.with(|n| *n < self.max);
                if !free {
                    return false;
                }
                B::sched_point();
                self.active.with(|n| *n += 1);
                true
            }
        }
    }

    /// Returns a slot and wakes `wait_idle` waiters.
    pub fn release(&self) {
        self.active.with(|n| *n = n.saturating_sub(1));
        self.active.notify_all();
    }

    /// Blocks until every slot is free (graceful-shutdown drain).
    pub fn wait_idle(&self) {
        self.active.wait_until(|n| (*n == 0).then_some(()));
    }

    /// Currently held slots.
    pub fn active(&self) -> usize {
        self.active.with(|n| *n)
    }

    /// Configured ceiling.
    pub fn capacity(&self) -> usize {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StdBackend;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity_and_frees_on_release() {
        let g: ConnGate<StdBackend> = ConnGate::new(2);
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        assert!(!g.try_acquire(), "third conn must shed");
        g.release();
        assert!(g.try_acquire());
        assert_eq!(g.active(), 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let g: ConnGate<StdBackend> = ConnGate::new(0);
        assert_eq!(g.capacity(), 1);
        assert!(g.try_acquire());
        assert!(!g.try_acquire());
    }

    #[test]
    fn wait_idle_blocks_until_drained() {
        let g: Arc<ConnGate<StdBackend>> = Arc::new(ConnGate::new(4));
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        let waiter = {
            let g = Arc::clone(&g);
            std::thread::spawn(move || g.wait_idle())
        };
        std::thread::sleep(std::time::Duration::from_millis(2));
        g.release();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(!waiter.is_finished(), "one slot still held");
        g.release();
        waiter.join().unwrap();
        assert_eq!(g.active(), 0);
    }
}
