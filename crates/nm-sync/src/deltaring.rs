//! The telemetry flight recorder's delta-sampler ring.
//!
//! Each [`DeltaRing::tick_with`] reads a cumulative snapshot (the
//! caller's `read` closure — e.g. a metrics-registry scrape), diffs
//! it against the stored high-watermark snapshot, advances the
//! watermark to *the same snapshot the delta was computed from*, and
//! appends the delta to a bounded ring (drop-oldest). Conservation —
//! ring deltas + dropped deltas == watermark — holds only because the
//! read, the diff, and the watermark advance share one monitor
//! region; [`DeltaBug::RereadWatermark`] re-reads the snapshot for
//! the watermark advance, silently losing every event that lands
//! between the two reads.

use crate::backend::{Backend, Monitor};
use std::collections::VecDeque;

/// Default-off defect knob for the sampler (negative-suite only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaBug {
    None,
    /// The watermark advances to a *second* snapshot read, not the
    /// one the delta was computed from.
    RereadWatermark,
}

struct DeltaState<S, D> {
    prev: S,
    ticks: VecDeque<D>,
    next_tick: u64,
    dropped: u64,
}

/// A bounded ring of per-tick deltas over a cumulative source.
/// `S` is the snapshot type, `D` the delta type.
pub struct DeltaRing<S: Send, D: Send, B: Backend> {
    inner: B::Monitor<DeltaState<S, D>>,
    cap: usize,
    bug: DeltaBug,
}

impl<S: Send, D: Send, B: Backend> DeltaRing<S, D, B> {
    pub fn new(cap: usize, initial: S) -> Self {
        Self::with_bug(cap, initial, DeltaBug::None)
    }

    pub fn with_bug(cap: usize, initial: S, bug: DeltaBug) -> Self {
        Self {
            inner: B::Monitor::new(DeltaState {
                prev: initial,
                ticks: VecDeque::new(),
                next_tick: 0,
                dropped: 0,
            }),
            cap: cap.max(1),
            bug,
        }
    }

    /// One sampling tick: `read()` scrapes the cumulative source,
    /// `diff(prev, cur, tick)` computes the delta, the watermark
    /// advances to `cur`, and the delta is appended (evicting the
    /// oldest tick when full). Returns the tick ordinal. Both
    /// closures run with the monitor held.
    pub fn tick_with(
        &self,
        mut read: impl FnMut() -> S,
        diff: impl FnOnce(&S, &S, u64) -> D,
    ) -> u64 {
        self.inner.with(|st| {
            let cur = read();
            let watermark = match self.bug {
                DeltaBug::None => None,
                DeltaBug::RereadWatermark => {
                    // Defect: a second scrape for the watermark —
                    // increments landing between the two reads are in
                    // neither this delta nor any future one.
                    B::sched_point();
                    Some(read())
                }
            };
            let tick = st.next_tick;
            st.next_tick += 1;
            let d = diff(&st.prev, &cur, tick);
            st.prev = watermark.unwrap_or(cur);
            if st.ticks.len() >= self.cap {
                st.ticks.pop_front();
                st.dropped += 1;
            }
            st.ticks.push_back(d);
            tick
        })
    }

    /// Retained deltas, oldest first.
    pub fn ticks(&self) -> Vec<D>
    where
        D: Clone,
    {
        self.inner.with(|st| st.ticks.iter().cloned().collect())
    }

    /// Borrow the retained deltas without cloning (dump paths).
    pub fn with_ticks<R>(&self, f: impl FnOnce(&VecDeque<D>) -> R) -> R {
        self.inner.with(|st| f(&st.ticks))
    }

    /// Ticks evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.with(|st| st.dropped)
    }

    /// Ordinal the next tick will get (== ticks taken so far).
    pub fn next_tick(&self) -> u64 {
        self.inner.with(|st| st.next_tick)
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StdBackend;

    type Ring = DeltaRing<u64, u64, StdBackend>;

    #[test]
    fn deltas_conserve_the_counter() {
        let ring = Ring::new(8, 0);
        let mut counter = 0u64;
        let mut emitted = 0u64;
        for add in [3u64, 0, 7, 2] {
            counter += add;
            let c = counter;
            ring.tick_with(|| c, |prev, cur, _| cur - prev);
        }
        for d in ring.ticks() {
            emitted += d;
        }
        assert_eq!(emitted, counter, "ring must conserve every increment");
        assert_eq!(ring.ticks(), vec![3, 0, 7, 2]);
    }

    #[test]
    fn capacity_drops_oldest_and_counts() {
        let ring = Ring::new(2, 0);
        let mut counter = 0u64;
        for add in [1u64, 2, 3, 4] {
            counter += add;
            let c = counter;
            ring.tick_with(|| c, |prev, cur, _| cur - prev);
        }
        assert_eq!(ring.ticks(), vec![3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.next_tick(), 4);
    }

    #[test]
    fn tick_ordinals_are_sequential() {
        let ring = Ring::new(4, 0);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let t = ring.tick_with(|| 0, |_, _, tick| tick);
            seen.push(t);
        }
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(ring.ticks(), vec![0, 1, 2], "diff sees the same ordinal");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = Ring::new(0, 0);
        assert_eq!(ring.capacity(), 1);
        ring.tick_with(|| 5, |p, c, _| c - p);
        ring.tick_with(|| 9, |p, c, _| c - p);
        assert_eq!(ring.ticks(), vec![4]);
        assert_eq!(ring.dropped(), 1);
    }
}
