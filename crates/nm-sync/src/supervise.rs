//! The supervisor's check-dead-then-respawn core.
//!
//! [`RespawnCore`] owns the child table; [`RespawnCore::scan`] is one
//! liveness sweep: per child, the dead-check, the reap, the
//! quarantine decision, and the respawn all happen inside a single
//! monitor region, so two concurrent revival paths can never both
//! observe the same corpse and double-spawn it.
//! [`RespawnBug::SplitRespawn`] reintroduces the split — observe in
//! one region, act in another — which the virtualized explorer
//! catches as two live incarnations in one supervised slot.
//!
//! The core is generic over the handle type `H` (production:
//! `std::thread::JoinHandle`), with liveness, reaping, and respawning
//! delegated to caller closures that run *inside* the region — the
//! same lock extent the pre-extraction `monitor_loop` held.

use crate::backend::{Backend, Monitor};

/// Default-off defect knob for the respawn path (negative-suite only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespawnBug {
    None,
    /// The dead-check and the reap/respawn are separate monitor
    /// regions: a second monitor can observe the same dead child and
    /// both respawn it.
    SplitRespawn,
}

/// One supervised slot.
pub struct ChildCell<H> {
    pub handle: Option<H>,
    pub restarts: u32,
    pub quarantined: bool,
}

impl<H> ChildCell<H> {
    pub fn new(handle: Option<H>) -> Self {
        Self {
            handle,
            restarts: 0,
            quarantined: false,
        }
    }
}

pub struct RespawnCore<H: Send, B: Backend> {
    children: B::Monitor<Vec<ChildCell<H>>>,
    bug: RespawnBug,
}

impl<H: Send, B: Backend> RespawnCore<H, B> {
    pub fn new(children: Vec<ChildCell<H>>) -> Self {
        Self::with_bug(children, RespawnBug::None)
    }

    pub fn with_bug(children: Vec<ChildCell<H>>, bug: RespawnBug) -> Self {
        Self {
            children: B::Monitor::new(children),
            bug,
        }
    }

    /// One liveness sweep over every slot.
    ///
    /// Per non-quarantined child: if `is_dead` (or the handle is
    /// absent), the corpse is reaped, then either quarantined (budget
    /// exhausted → `on_quarantine(idx, restarts)`) or respawned
    /// (`respawn(idx, attempt)`, where `attempt` is the new restart
    /// count). `stop()` short-circuits a child mid-sweep. All
    /// closures run with the monitor held; a sweep ends by waking
    /// monitor waiters so blocked observers re-check.
    #[allow(clippy::too_many_arguments)]
    pub fn scan(
        &self,
        stop: impl Fn() -> bool,
        mut is_dead: impl FnMut(&H) -> bool,
        mut reap: impl FnMut(H),
        max_restarts: u32,
        mut respawn: impl FnMut(usize, u32) -> Option<H>,
        mut on_quarantine: impl FnMut(usize, u32),
    ) {
        match self.bug {
            RespawnBug::None => {
                self.children.with(|ch| {
                    for (i, c) in ch.iter_mut().enumerate() {
                        if c.quarantined || stop() {
                            continue;
                        }
                        let dead = match &c.handle {
                            Some(h) => is_dead(h),
                            None => true,
                        };
                        if !dead {
                            continue;
                        }
                        if let Some(h) = c.handle.take() {
                            reap(h);
                        }
                        if c.restarts >= max_restarts {
                            c.quarantined = true;
                            on_quarantine(i, c.restarts);
                            continue;
                        }
                        c.restarts += 1;
                        c.handle = respawn(i, c.restarts);
                    }
                });
            }
            RespawnBug::SplitRespawn => {
                let n = self.children.with(|ch| ch.len());
                for i in 0..n {
                    // Defect region 1: observe liveness.
                    let dead = self.children.with(|ch| {
                        let c = &ch[i];
                        if c.quarantined || stop() {
                            return false;
                        }
                        match &c.handle {
                            Some(h) => is_dead(h),
                            None => true,
                        }
                    });
                    if !dead {
                        continue;
                    }
                    B::sched_point();
                    // Defect region 2: act on the stale observation —
                    // no re-check, so a concurrent scan that already
                    // revived this slot gets revived *again*.
                    self.children.with(|ch| {
                        let c = &mut ch[i];
                        if let Some(h) = c.handle.take() {
                            reap(h);
                        }
                        if c.restarts >= max_restarts {
                            c.quarantined = true;
                            on_quarantine(i, c.restarts);
                            return;
                        }
                        c.restarts += 1;
                        c.handle = respawn(i, c.restarts);
                    });
                }
            }
        }
        self.children.notify_all();
    }

    /// Arbitrary region over the child table (liveness queries,
    /// shutdown reaping).
    pub fn with<R>(&self, f: impl FnOnce(&mut Vec<ChildCell<H>>) -> R) -> R {
        self.children.with(f)
    }

    /// Blocks until `f` yields `Some`; woken by every [`scan`] and by
    /// [`notify`]. (`scan`: RespawnCore::scan, `notify`:
    /// RespawnCore::notify.)
    pub fn wait<R>(&self, f: impl FnMut(&mut Vec<ChildCell<H>>) -> Option<R>) -> R {
        self.children.wait_until(f)
    }

    /// Wakes blocked [`RespawnCore::wait`] callers after an
    /// out-of-band table mutation (e.g. a harness killing a child).
    pub fn notify(&self) {
        self.children.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StdBackend;

    struct FakeHandle {
        alive: bool,
    }

    type Core = RespawnCore<FakeHandle, StdBackend>;

    fn scan_once(core: &Core, max: u32, respawned: &mut u32, quarantined: &mut u32) {
        core.scan(
            || false,
            |h| !h.alive,
            drop,
            max,
            |_, _| {
                *respawned += 1;
                Some(FakeHandle { alive: true })
            },
            |_, _| *quarantined += 1,
        );
    }

    #[test]
    fn dead_child_is_respawned_live_child_untouched() {
        let core = Core::new(vec![
            ChildCell::new(Some(FakeHandle { alive: false })),
            ChildCell::new(Some(FakeHandle { alive: true })),
        ]);
        let (mut r, mut q) = (0, 0);
        scan_once(&core, 3, &mut r, &mut q);
        assert_eq!((r, q), (1, 0));
        core.with(|ch| {
            assert_eq!(ch[0].restarts, 1);
            assert!(ch[0].handle.as_ref().unwrap().alive);
            assert_eq!(ch[1].restarts, 0);
        });
    }

    #[test]
    fn missing_handle_counts_as_dead() {
        let core = Core::new(vec![ChildCell::new(None)]);
        let (mut r, mut q) = (0, 0);
        scan_once(&core, 3, &mut r, &mut q);
        assert_eq!(r, 1);
        core.with(|ch| assert!(ch[0].handle.is_some()));
    }

    #[test]
    fn budget_exhaustion_quarantines_exactly_once() {
        let core = Core::new(vec![ChildCell::new(Some(FakeHandle { alive: false }))]);
        let (mut r, mut q) = (0, 0);
        for _ in 0..5 {
            // kill whatever got respawned, then sweep again
            core.with(|ch| {
                if let Some(h) = ch[0].handle.as_mut() {
                    h.alive = false;
                }
            });
            scan_once(&core, 2, &mut r, &mut q);
        }
        assert_eq!(r, 2, "restart budget respected exactly");
        assert_eq!(q, 1, "quarantined once, then left alone");
        core.with(|ch| {
            assert!(ch[0].quarantined);
            assert!(ch[0].handle.is_none());
        });
    }

    #[test]
    fn stop_skips_revival() {
        let core = Core::new(vec![ChildCell::new(Some(FakeHandle { alive: false }))]);
        let (mut r, mut q) = (0, 0);
        core.scan(
            || true,
            |h| !h.alive,
            drop,
            3,
            |_, _| {
                r += 1;
                Some(FakeHandle { alive: true })
            },
            |_, _| q += 1,
        );
        assert_eq!((r, q), (0, 0));
        core.with(|ch| assert!(ch[0].handle.is_some(), "corpse not even reaped"));
    }
}
