//! Per-shard circuit breakers for the scoring fan-out.
//!
//! Classic closed → open → half-open state machine, with one twist for
//! determinism: cooldown is measured in *scoring passes* of the owning
//! domain, not wall time, so breaker transitions replay identically
//! under the same request sequence (the no-wallclock discipline the
//! rest of the workspace follows).
//!
//! * **Closed** — shard is scored normally; `failure_threshold`
//!   consecutive failed passes trip it open.
//! * **Open** — the shard is skipped (short-circuited) until
//!   `cooldown_passes` passes have elapsed, shedding its work instead
//!   of burning retries on a shard that keeps failing.
//! * **Half-open** — exactly one *probe* pass is admitted (no
//!   retries); success closes the breaker, failure re-opens it for
//!   another cooldown.
//!
//! [`ShardBreakers`] is the pure single-threaded state machine;
//! [`BreakerBank`] wraps one per-domain set in a backend monitor so
//! the consult/report protocol the engine runs is the code nm-check
//! model-checks. The single-probe guarantee holds only because the
//! Open→HalfOpen consult and the probe claim share one monitor region
//! ([`BreakerBug::SplitClaim`] reintroduces the split).

use crate::backend::{Backend, Monitor};

/// Breaker tuning: `failure_threshold == 0` disables breakers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive shard-pass failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Scoring passes an Open breaker waits before probing.
    pub cooldown_passes: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_passes: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// How a batch may treat one shard this pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Score normally (retries allowed).
    Allow,
    /// Half-open probe: score once, no retries.
    Probe,
    /// Open: skip the shard, its slice of the catalog is shed.
    Skip,
}

/// State transitions surfaced to the caller for counters/trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Closed → Open (threshold reached).
    Opened,
    /// Open → HalfOpen (cooldown elapsed, probe admitted).
    HalfOpened,
    /// HalfOpen → Open (probe failed).
    Reopened,
    /// HalfOpen → Closed (probe succeeded).
    Closed,
}

#[derive(Debug, Clone)]
struct Shard {
    state: BreakerState,
    consecutive_failures: u32,
    open_until_pass: u64,
    probing: bool,
}

impl Default for Shard {
    fn default() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_pass: 0,
            probing: false,
        }
    }
}

/// The breaker set of one domain, indexed by shard id. Lazily resized:
/// a reload can change the catalog size and therefore the shard count;
/// existing shards keep their state.
#[derive(Debug)]
pub struct ShardBreakers {
    cfg: BreakerConfig,
    shards: Vec<Shard>,
}

impl ShardBreakers {
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            shards: Vec::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.cfg.failure_threshold > 0
    }

    /// Grows the set to cover `n_shards` (never shrinks, so stale
    /// shard state survives a transient catalog shrink).
    pub fn resize(&mut self, n_shards: usize) {
        if self.shards.len() < n_shards {
            self.shards.resize(n_shards, Shard::default());
        }
    }

    pub fn state(&self, shard: usize) -> BreakerState {
        self.shards
            .get(shard)
            .map_or(BreakerState::Closed, |s| s.state)
    }

    /// Consults the breaker for `shard` at the start of scoring pass
    /// `pass`. May transition Open → HalfOpen (returned so the caller
    /// can count it).
    pub fn admit(&mut self, shard: usize, pass: u64) -> (Admission, Option<Transition>) {
        if !self.enabled() {
            return (Admission::Allow, None);
        }
        self.resize(shard + 1);
        let s = &mut self.shards[shard];
        match s.state {
            BreakerState::Closed => (Admission::Allow, None),
            BreakerState::Open => {
                if pass >= s.open_until_pass {
                    s.state = BreakerState::HalfOpen;
                    s.probing = true;
                    (Admission::Probe, Some(Transition::HalfOpened))
                } else {
                    (Admission::Skip, None)
                }
            }
            BreakerState::HalfOpen => {
                // A probe is already in flight (its outcome not yet
                // reported): admit nothing else.
                if s.probing {
                    (Admission::Skip, None)
                } else {
                    s.probing = true;
                    (Admission::Probe, None)
                }
            }
        }
    }

    /// What [`ShardBreakers::admit`] *would* return, without claiming
    /// anything. Exists only so [`BreakerBug::SplitClaim`] can model
    /// the consult-then-claim race; production never calls it.
    pub fn peek_admit(&self, shard: usize, pass: u64) -> Admission {
        if !self.enabled() {
            return Admission::Allow;
        }
        match self
            .shards
            .get(shard)
            .map_or(BreakerState::Closed, |s| s.state)
        {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => {
                if pass >= self.shards[shard].open_until_pass {
                    Admission::Probe
                } else {
                    Admission::Skip
                }
            }
            BreakerState::HalfOpen => {
                if self.shards[shard].probing {
                    Admission::Skip
                } else {
                    Admission::Probe
                }
            }
        }
    }

    /// Unconditionally claims a half-open probe for `shard`. The
    /// other half of the [`BreakerBug::SplitClaim`] defect knob:
    /// acting on a stale `peek_admit` observation.
    pub fn claim_probe(&mut self, shard: usize) -> Option<Transition> {
        self.resize(shard + 1);
        let s = &mut self.shards[shard];
        let was_open = s.state == BreakerState::Open;
        s.state = BreakerState::HalfOpen;
        s.probing = true;
        was_open.then_some(Transition::HalfOpened)
    }

    /// Reports a successful pass over `shard`.
    pub fn on_success(&mut self, shard: usize) -> Option<Transition> {
        if !self.enabled() {
            return None;
        }
        self.resize(shard + 1);
        let s = &mut self.shards[shard];
        s.consecutive_failures = 0;
        match s.state {
            BreakerState::HalfOpen => {
                s.state = BreakerState::Closed;
                s.probing = false;
                Some(Transition::Closed)
            }
            _ => None,
        }
    }

    /// Reports a failed pass over `shard` during pass `pass` (after
    /// the batch's retry budget was spent).
    pub fn on_failure(&mut self, shard: usize, pass: u64) -> Option<Transition> {
        if !self.enabled() {
            return None;
        }
        self.resize(shard + 1);
        let cooldown = self.cfg.cooldown_passes.max(1);
        let s = &mut self.shards[shard];
        match s.state {
            BreakerState::Closed => {
                s.consecutive_failures += 1;
                if s.consecutive_failures >= self.cfg.failure_threshold {
                    s.state = BreakerState::Open;
                    s.open_until_pass = pass.saturating_add(cooldown);
                    Some(Transition::Opened)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                s.state = BreakerState::Open;
                s.probing = false;
                s.open_until_pass = pass.saturating_add(cooldown);
                Some(Transition::Reopened)
            }
            // Failure reported for a skipped shard: keep it open.
            BreakerState::Open => None,
        }
    }
}

/// Default-off defect knob for the bank (negative-suite only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerBug {
    None,
    /// Admission consults the state machine in one monitor region and
    /// claims the probe in another, so two threads can both be told
    /// to probe the same sick shard.
    SplitClaim,
}

/// One domain's breaker set behind a backend monitor: the concurrent
/// consult/report protocol as the engine actually runs it.
pub struct BreakerBank<B: Backend> {
    inner: B::Monitor<ShardBreakers>,
    bug: BreakerBug,
}

impl<B: Backend> BreakerBank<B> {
    pub fn new(cfg: BreakerConfig) -> Self {
        Self::with_bug(cfg, BreakerBug::None)
    }

    pub fn with_bug(cfg: BreakerConfig, bug: BreakerBug) -> Self {
        Self {
            inner: B::Monitor::new(ShardBreakers::new(cfg)),
            bug,
        }
    }

    /// One monitor region over the whole set — batch admission scans
    /// and outcome reports run here.
    pub fn with<R>(&self, f: impl FnOnce(&mut ShardBreakers) -> R) -> R {
        self.inner.with(f)
    }

    /// Single-shard admission. Correct form is one region; the
    /// [`BreakerBug::SplitClaim`] form peeks in one region and claims
    /// in another.
    pub fn admit(&self, shard: usize, pass: u64) -> (Admission, Option<Transition>) {
        match self.bug {
            BreakerBug::None => self.inner.with(|b| b.admit(shard, pass)),
            BreakerBug::SplitClaim => {
                let would = self.inner.with(|b| b.peek_admit(shard, pass));
                match would {
                    Admission::Probe => {
                        // Defect window: another thread can claim the
                        // probe (or even close the breaker) in here.
                        B::sched_point();
                        let tr = self.inner.with(|b| b.claim_probe(shard));
                        (Admission::Probe, tr)
                    }
                    other => (other, None),
                }
            }
        }
    }

    pub fn state(&self, shard: usize) -> BreakerState {
        self.inner.with(|b| b.state(shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StdBackend;

    fn set(threshold: u32, cooldown: u64) -> ShardBreakers {
        ShardBreakers::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_passes: cooldown,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = set(3, 4);
        assert_eq!(b.on_failure(0, 1), None);
        assert_eq!(b.on_failure(0, 2), None);
        assert_eq!(b.on_failure(0, 3), Some(Transition::Opened));
        assert_eq!(b.state(0), BreakerState::Open);
        // open: skipped until the cooldown elapses
        assert_eq!(b.admit(0, 4).0, Admission::Skip);
        assert_eq!(b.admit(0, 6).0, Admission::Skip);
        let (adm, tr) = b.admit(0, 7);
        assert_eq!(adm, Admission::Probe);
        assert_eq!(tr, Some(Transition::HalfOpened));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = set(2, 4);
        assert_eq!(b.on_failure(0, 1), None);
        assert_eq!(b.on_success(0), None);
        assert_eq!(b.on_failure(0, 2), None, "streak was reset");
        assert_eq!(b.on_failure(0, 3), Some(Transition::Opened));
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let mut b = set(1, 2);
        assert_eq!(b.on_failure(0, 0), Some(Transition::Opened));
        assert_eq!(b.admit(0, 2).0, Admission::Probe);
        assert_eq!(b.on_success(0), Some(Transition::Closed));
        assert_eq!(b.state(0), BreakerState::Closed);
        assert_eq!(b.admit(0, 3).0, Admission::Allow);

        assert_eq!(b.on_failure(0, 3), Some(Transition::Opened));
        assert_eq!(b.admit(0, 5).0, Admission::Probe);
        assert_eq!(b.on_failure(0, 5), Some(Transition::Reopened));
        assert_eq!(b.state(0), BreakerState::Open);
        assert_eq!(b.admit(0, 6).0, Admission::Skip);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let mut b = set(1, 1);
        b.on_failure(0, 0);
        assert_eq!(b.admit(0, 1).0, Admission::Probe);
        // second consult while the probe is in flight: skip
        assert_eq!(b.admit(0, 1).0, Admission::Skip);
        assert_eq!(b.admit(0, 2).0, Admission::Skip);
    }

    #[test]
    fn disabled_breaker_admits_everything() {
        let mut b = set(0, 4);
        assert!(!b.enabled());
        for pass in 0..10 {
            assert_eq!(b.on_failure(3, pass), None);
            assert_eq!(b.admit(3, pass).0, Admission::Allow);
        }
    }

    #[test]
    fn shards_are_independent() {
        let mut b = set(1, 8);
        assert_eq!(b.on_failure(2, 0), Some(Transition::Opened));
        assert_eq!(b.admit(2, 1).0, Admission::Skip);
        assert_eq!(b.admit(0, 1).0, Admission::Allow);
        assert_eq!(b.admit(5, 1).0, Admission::Allow);
    }

    #[test]
    fn peek_matches_admit_without_claiming() {
        let mut b = set(1, 1);
        b.on_failure(0, 0);
        assert_eq!(b.peek_admit(0, 1), Admission::Probe);
        assert_eq!(b.state(0), BreakerState::Open, "peek must not claim");
        assert_eq!(b.admit(0, 1).0, Admission::Probe);
        assert_eq!(b.peek_admit(0, 1), Admission::Skip, "probe in flight");
    }

    #[test]
    fn bank_single_thread_protocol_matches_state_machine() {
        let bank: BreakerBank<StdBackend> = BreakerBank::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_passes: 1,
        });
        bank.with(|b| b.on_failure(0, 0));
        assert_eq!(bank.state(0), BreakerState::Open);
        assert_eq!(bank.admit(0, 0).0, Admission::Skip);
        let (adm, tr) = bank.admit(0, 1);
        assert_eq!(adm, Admission::Probe);
        assert_eq!(tr, Some(Transition::HalfOpened));
        assert_eq!(bank.admit(0, 1).0, Admission::Skip);
        bank.with(|b| b.on_success(0));
        assert_eq!(bank.state(0), BreakerState::Closed);
    }
}
