//! The leader–follower request coalescer.
//!
//! Concurrent requests for the same domain enqueue into a
//! [`BatchQueue`]; exactly one thread at a time is elected *leader*
//! (the election rides the same monitor region as the enqueue, so it
//! can never race) and drains the queue in batches, filling each
//! request's [`Slot`] with the result while followers block on their
//! slot. When the queue drains empty the leader resigns *in the same
//! region* that observed emptiness — resigning in a separate region
//! opens the classic lost-wakeup window where a follower enqueues
//! between the two regions, sees `leader_active == true`, parks, and
//! is never served ([`CoalesceBug::LostWakeup`] reintroduces exactly
//! that, and the virtualized explorer reports it as a deadlock).

use crate::backend::{Backend, Monitor};
use std::collections::VecDeque;
use std::time::Duration;

/// Default-off defect knobs for the coalescer (negative-suite only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceBug {
    None,
    /// The leader's final empty drain resigns in a *second* monitor
    /// region instead of the one that observed emptiness.
    LostWakeup,
    /// The first non-empty drain re-enqueues a copy of every drained
    /// request, so each is dispatched twice.
    DoubleDispatch,
}

/// A single-producer result slot a request parks on. The value is
/// cloned out so late observers (e.g. a leader reading its own slot
/// after leading) still see it.
pub struct Slot<T: Send, B: Backend> {
    cell: B::Monitor<Option<T>>,
}

impl<T: Send + Clone, B: Backend> Slot<T, B> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            cell: B::Monitor::new(None),
        }
    }

    /// Publishes the result and wakes the parked requester.
    pub fn fill(&self, value: T) {
        self.cell.with(|c| *c = Some(value));
        self.cell.notify_all();
    }

    /// Blocks until filled.
    pub fn wait(&self) -> T {
        self.cell.wait_until(|c| c.clone())
    }

    /// Blocks until filled or `expired()` turns true. `budget()`
    /// bounds each individual sleep (`None` = unbounded); see
    /// [`Monitor::wait_deadline`] for the exact contract.
    pub fn wait_deadline(
        &self,
        expired: impl FnMut() -> bool,
        budget: impl FnMut() -> Option<Duration>,
    ) -> Option<T> {
        self.cell.wait_deadline(|c| c.clone(), expired, budget)
    }
}

struct QueueState<P> {
    pending: VecDeque<P>,
    leader_active: bool,
    /// One-shot latch for [`CoalesceBug::DoubleDispatch`].
    dup_done: bool,
}

/// The shared per-domain queue with fused leader election.
pub struct BatchQueue<P: Send + Clone, B: Backend> {
    q: B::Monitor<QueueState<P>>,
    bug: CoalesceBug,
}

impl<P: Send + Clone, B: Backend> BatchQueue<P, B> {
    pub fn new() -> Self {
        Self::with_bug(CoalesceBug::None)
    }

    pub fn with_bug(bug: CoalesceBug) -> Self {
        Self {
            q: B::Monitor::new(QueueState {
                pending: VecDeque::new(),
                leader_active: false,
                dup_done: false,
            }),
            bug,
        }
    }

    /// Enqueues a request and elects this thread leader iff none is
    /// active — one monitor region, so election can never be missed
    /// or doubled. `on_enter` observes the queue depth at region
    /// entry (before the push) for telemetry.
    pub fn submit(&self, item: P, on_enter: impl FnOnce(usize)) -> bool {
        self.q.with(|s| {
            on_enter(s.pending.len());
            s.pending.push_back(item);
            if s.leader_active {
                false
            } else {
                s.leader_active = true;
                true
            }
        })
    }

    /// Takes the next batch (up to `max` requests). An empty return
    /// means the queue drained: the leadership flag was dropped in
    /// the same region that observed emptiness, and the caller must
    /// stop leading.
    pub fn drain(&self, max: usize) -> Vec<P> {
        let (batch, resign_late) = self.q.with(|s| {
            let n = s.pending.len().min(max);
            if n == 0 {
                if self.bug == CoalesceBug::LostWakeup {
                    // Defect: observe emptiness here, resign later.
                    return (Vec::new(), true);
                }
                s.leader_active = false;
                return (Vec::new(), false);
            }
            let batch: Vec<P> = s.pending.drain(..n).collect();
            if self.bug == CoalesceBug::DoubleDispatch && !s.dup_done {
                s.dup_done = true;
                for p in &batch {
                    s.pending.push_back(p.clone());
                }
            }
            (batch, false)
        });
        if resign_late {
            // Defect window: a submitter who enqueued between the two
            // regions saw leader_active == true and parked forever.
            B::sched_point();
            self.q.with(|s| s.leader_active = false);
        }
        batch
    }

    /// Whether a leader currently holds the queue.
    pub fn leader_active(&self) -> bool {
        self.q.with(|s| s.leader_active)
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.q.with(|s| s.pending.len())
    }
}

impl<P: Send + Clone, B: Backend> Default for BatchQueue<P, B> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StdBackend;
    use std::sync::Arc;

    type Q = BatchQueue<u32, StdBackend>;

    #[test]
    fn first_submitter_leads_followers_do_not() {
        let q = Q::new();
        assert!(q.submit(1, |_| {}));
        assert!(!q.submit(2, |_| {}));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.drain(8), vec![1, 2]);
        assert!(q.leader_active());
        assert!(q.drain(8).is_empty());
        assert!(!q.leader_active());
    }

    #[test]
    fn drain_respects_batch_max() {
        let q = Q::new();
        for i in 0..5 {
            q.submit(i, |_| {});
        }
        assert_eq!(q.drain(2), vec![0, 1]);
        assert_eq!(q.drain(2), vec![2, 3]);
        assert_eq!(q.drain(2), vec![4]);
    }

    #[test]
    fn on_enter_sees_depth_before_push() {
        let q = Q::new();
        let mut seen = 99;
        q.submit(1, |d| seen = d);
        assert_eq!(seen, 0);
        q.submit(2, |d| seen = d);
        assert_eq!(seen, 1);
    }

    #[test]
    fn slot_cross_thread_fill_and_wait() {
        let slot: Arc<Slot<u32, StdBackend>> = Arc::new(Slot::new());
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        std::thread::sleep(Duration::from_millis(2));
        slot.fill(17);
        assert_eq!(waiter.join().unwrap(), 17);
        // Late observer still sees the value.
        assert_eq!(slot.wait(), 17);
    }

    #[test]
    fn slot_deadline_expires() {
        let slot: Slot<u32, StdBackend> = Slot::new();
        let mut polls = 0;
        let r = slot.wait_deadline(
            move || {
                polls += 1;
                polls > 3
            },
            || Some(Duration::from_micros(200)),
        );
        assert_eq!(r, None);
    }

    #[test]
    fn double_dispatch_knob_duplicates_first_batch_once() {
        let q = Q::with_bug(CoalesceBug::DoubleDispatch);
        q.submit(1, |_| {});
        q.submit(2, |_| {});
        assert_eq!(q.drain(8), vec![1, 2]);
        assert_eq!(q.drain(8), vec![1, 2], "first batch re-enqueued");
        assert!(q.drain(8).is_empty(), "duplication is one-shot");
    }
}
