//! The slowest-N exemplar ring behind `nmcdr query trace`.
//!
//! Keeps the `cap` heaviest items seen so far: while below capacity
//! every record is kept; at capacity a new item replaces the current
//! lightest entry iff strictly heavier (ties keep the incumbent; among
//! equal-weight evictees the *newest* — highest [`Ranked::seq`] — is
//! evicted first, so long-lived exemplars are stable). The
//! room-check and the insert share one monitor region; splitting them
//! ([`RingBug::CheckThenAct`]) lets two recorders both see room for
//! one and push the ring over capacity.

use crate::backend::{AtomicU64Cell, Backend, Monitor};

/// How the ring orders items: `weight` picks what "slowest" means
/// (e.g. total latency µs), `seq` is the tiebreaker identity.
pub trait Ranked {
    fn weight(&self) -> u64;
    fn seq(&self) -> u64;
}

/// Default-off defect knob for the ring (negative-suite only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingBug {
    None,
    /// The capacity check and the push are separate regions.
    CheckThenAct,
}

pub struct SlowRing<T: Ranked + Send, B: Backend> {
    cap: usize,
    next_seq: B::AtomicU64,
    inner: B::Monitor<Vec<T>>,
    bug: RingBug,
}

impl<T: Ranked + Send, B: Backend> SlowRing<T, B> {
    pub fn new(cap: usize) -> Self {
        Self::with_bug(cap, RingBug::None)
    }

    pub fn with_bug(cap: usize, bug: RingBug) -> Self {
        Self {
            cap: cap.max(1),
            next_seq: B::AtomicU64::new(0),
            inner: B::Monitor::new(Vec::new()),
            bug,
        }
    }

    /// Allocates a fresh sequence id for an item about to be built.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.fetch_add(1)
    }

    /// Offers an item: kept if below capacity or strictly heavier
    /// than the current lightest resident.
    pub fn record(&self, item: T) {
        match self.bug {
            RingBug::None => self
                .inner
                .with(|ring| Self::push_or_replace(ring, self.cap, item)),
            RingBug::CheckThenAct => {
                // Defect: room observed in one region, consumed in
                // another — two recorders can both "fit" the last slot.
                let room = self.inner.with(|ring| ring.len() < self.cap);
                B::sched_point();
                if room {
                    self.inner.with(|ring| ring.push(item));
                } else {
                    self.inner
                        .with(|ring| Self::push_or_replace(ring, self.cap, item));
                }
            }
        }
    }

    fn push_or_replace(ring: &mut Vec<T>, cap: usize, item: T) {
        if ring.len() < cap {
            ring.push(item);
            return;
        }
        let lightest = ring
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.weight(), u64::MAX - e.seq()))
            .map(|(i, e)| (i, e.weight()));
        if let Some((i, w)) = lightest {
            if item.weight() > w {
                ring[i] = item;
            }
        }
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.inner.with(|ring| ring.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Residents ordered heaviest-first (equal weights: oldest seq
    /// first).
    pub fn snapshot(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut v = self.inner.with(|ring| ring.clone());
        v.sort_by(|a, b| b.weight().cmp(&a.weight()).then(a.seq().cmp(&b.seq())));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StdBackend;

    #[derive(Clone, Debug, PartialEq)]
    struct Item {
        w: u64,
        id: u64,
    }
    impl Ranked for Item {
        fn weight(&self) -> u64 {
            self.w
        }
        fn seq(&self) -> u64 {
            self.id
        }
    }

    type Ring = SlowRing<Item, StdBackend>;

    fn rec(r: &Ring, w: u64) {
        let id = r.next_seq();
        r.record(Item { w, id });
    }

    #[test]
    fn keeps_heaviest_n() {
        let r = Ring::new(2);
        for w in [10, 40, 20, 30, 5] {
            rec(&r, w);
        }
        let weights: Vec<u64> = r.snapshot().iter().map(|e| e.w).collect();
        assert_eq!(weights, vec![40, 30]);
    }

    #[test]
    fn equal_weight_keeps_incumbent() {
        let r = Ring::new(1);
        rec(&r, 10);
        rec(&r, 10);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].id, 0, "tie must not evict the incumbent");
    }

    #[test]
    fn eviction_prefers_newest_among_equal_lightest() {
        let r = Ring::new(2);
        rec(&r, 10); // id 0
        rec(&r, 10); // id 1
        rec(&r, 20); // id 2: evicts the *newest* of the two 10s
        let snap = r.snapshot();
        assert_eq!(snap.iter().map(|e| e.id).collect::<Vec<_>>(), vec![2, 0]);
    }

    #[test]
    fn never_exceeds_capacity() {
        let r = Ring::new(3);
        for w in 0..20 {
            rec(&r, w);
        }
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn seq_is_monotonic() {
        let r = Ring::new(2);
        assert_eq!(r.next_seq(), 0);
        assert_eq!(r.next_seq(), 1);
        assert_eq!(r.next_seq(), 2);
    }
}
