//! The paper's fine-grained gating fusion (Eq. 10 and Eq. 16).

use crate::{Linear, Module, Param};
use nm_autograd::{Tape, Var};
use nm_tensor::TensorRng;

/// Gated fusion of two same-width message streams:
///
/// ```text
/// H = σ(a W_a + b_a + b W_b + b_b)
/// out = tanh((1 - H) ⊙ a + H ⊙ b)
/// ```
///
/// Used for head/tail message fusion (Eq. 10, with `a = u_head`,
/// `b = u_tail`) and for self/other cross-domain fusion (Eq. 16, with
/// `a = u_g3*`, `b = u_other`).
pub struct GateFusion {
    wa: Linear,
    wb: Linear,
}

impl GateFusion {
    pub fn new(name: &str, dim: usize, rng: &mut TensorRng) -> Self {
        Self {
            wa: Linear::new(&format!("{name}.gate_a"), dim, dim, rng),
            wb: Linear::new(&format!("{name}.gate_b"), dim, dim, rng),
        }
    }

    /// Fuses `a` and `b` (both `N x dim`).
    pub fn forward(&self, tape: &mut Tape, a: Var, b: Var) -> Var {
        let ha = self.wa.forward(tape, a);
        let hb = self.wb.forward(tape, b);
        let pre = tape.add(ha, hb);
        let h = tape.sigmoid(pre);
        let hm = tape.one_minus(h);
        let left = tape.mul(hm, a);
        let right = tape.mul(h, b);
        let s = tape.add(left, right);
        tape.tanh(s)
    }

    pub fn dim(&self) -> usize {
        self.wa.in_dim()
    }
}

impl Module for GateFusion {
    fn params(&self) -> Vec<&Param> {
        let mut p = self.wa.params();
        p.extend(self.wb.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_tensor::Tensor;

    #[test]
    fn output_shape_and_range() {
        let mut rng = TensorRng::seed_from(1);
        let gate = GateFusion::new("g", 4, &mut rng);
        let mut tape = Tape::new();
        let a = tape.constant(Tensor::randn(5, 4, 1.0, &mut rng));
        let b = tape.constant(Tensor::randn(5, 4, 1.0, &mut rng));
        let y = gate.forward(&mut tape, a, b);
        let v = tape.value(y);
        assert_eq!(v.shape(), (5, 4));
        // tanh output in (-1, 1)
        assert!(v.max() < 1.0 && v.min() > -1.0);
    }

    #[test]
    fn gate_has_four_params() {
        let mut rng = TensorRng::seed_from(2);
        let gate = GateFusion::new("g", 3, &mut rng);
        assert_eq!(gate.params().len(), 4);
        assert_eq!(gate.param_count(), 3 * 3 + 3 + 3 * 3 + 3);
    }

    #[test]
    fn gradients_flow_to_both_branches() {
        let mut rng = TensorRng::seed_from(3);
        let gate = GateFusion::new("g", 2, &mut rng);
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::randn(3, 2, 1.0, &mut rng));
        let b = tape.leaf(Tensor::randn(3, 2, 1.0, &mut rng));
        let y = gate.forward(&mut tape, a, b);
        let l = tape.sum_all(y);
        tape.backward(l);
        assert!(tape.grad(a).is_some());
        assert!(tape.grad(b).is_some());
        for p in gate.params() {
            p.absorb_grad(&tape);
            assert!(p.grad_norm_sq() > 0.0, "no grad for {}", p.name());
        }
    }
}
