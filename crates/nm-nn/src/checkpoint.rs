//! Parameter checkpointing.
//!
//! A minimal self-describing binary format (no external deps):
//!
//! ```text
//! magic  "NMCK"              4 bytes
//! version u32 LE             (currently 1)
//! count   u32 LE
//! per parameter:
//!   name_len u32 LE, name bytes (UTF-8)
//!   rows u32 LE, cols u32 LE
//!   rows*cols f32 LE values
//! ```
//!
//! Loading matches parameters **by name** and fails loudly on any
//! missing name or shape mismatch — silent partial loads are how
//! checkpoint bugs hide.

use crate::Param;
use nm_tensor::Tensor;
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"NMCK";
const VERSION: u32 = 1;

/// Checkpoint errors.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    /// Not a checkpoint file / wrong version.
    Format(String),
    /// Parameter present in the file but not in the model, or vice
    /// versa.
    NameMismatch(String),
    /// Shapes differ for a same-named parameter.
    ShapeMismatch {
        name: String,
        file: (usize, usize),
        model: (usize, usize),
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "bad checkpoint format: {m}"),
            CheckpointError::NameMismatch(n) => write!(f, "parameter name mismatch: {n}"),
            CheckpointError::ShapeMismatch { name, file, model } => write!(
                f,
                "shape mismatch for '{name}': file {}x{}, model {}x{}",
                file.0, file.1, model.0, model.1
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes a `u32` little-endian (shared by the snapshot format in
/// `nm-serve`).
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Fills `buf`, turning a short read into a [`CheckpointError::Format`]
/// — a truncated file is a corrupt file, not an I/O failure.
fn read_exact_or_format<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), CheckpointError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::Format("truncated file".into())
        } else {
            CheckpointError::Io(e)
        }
    })
}

/// Reads a little-endian `u32` (shared by the snapshot format in
/// `nm-serve`). Truncation is a `Format` error.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact_or_format(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a tensor as `rows u32, cols u32, rows*cols f32 LE`.
pub fn write_tensor<W: Write>(w: &mut W, t: &Tensor) -> Result<(), CheckpointError> {
    write_u32(w, t.rows() as u32)?;
    write_u32(w, t.cols() as u32)?;
    for x in t.data() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a tensor written by [`write_tensor`]. Truncation is a
/// `Format` error.
pub fn read_tensor<R: Read>(r: &mut R) -> Result<Tensor, CheckpointError> {
    let rows = read_u32(r)? as usize;
    let cols = read_u32(r)? as usize;
    if rows.saturating_mul(cols) > 1 << 28 {
        return Err(CheckpointError::Format(format!(
            "unreasonable tensor shape {rows}x{cols}"
        )));
    }
    let mut data = vec![0f32; rows * cols];
    let mut buf = [0u8; 4];
    for x in &mut data {
        read_exact_or_format(r, &mut buf)?;
        *x = f32::from_le_bytes(buf);
    }
    Tensor::from_vec(rows, cols, data).map_err(|e| CheckpointError::Format(e.to_string()))
}

/// Serializes parameters to a writer.
pub fn save_params<W: Write>(params: &[&Param], w: &mut W) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, params.len() as u32)?;
    for p in params {
        let name = p.name().as_bytes();
        write_u32(w, name.len() as u32)?;
        w.write_all(name)?;
        let v = p.value();
        write_u32(w, v.rows() as u32)?;
        write_u32(w, v.cols() as u32)?;
        for x in v.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Saves parameters to a file path.
pub fn save_to_file(params: &[&Param], path: &Path) -> Result<(), CheckpointError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    save_params(params, &mut f)
}

/// Reads a checkpoint into `(name, tensor)` pairs.
pub fn read_checkpoint<R: Read>(r: &mut R) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut magic = [0u8; 4];
    read_exact_or_format(r, &mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > 1 << 20 {
            return Err(CheckpointError::Format("unreasonable name length".into()));
        }
        let mut name = vec![0u8; name_len];
        read_exact_or_format(r, &mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Format("non-utf8 parameter name".into()))?;
        out.push((name, read_tensor(r)?));
    }
    Ok(out)
}

/// Loads a checkpoint into a parameter set, matching strictly by name.
/// Every model parameter must be present in the file and every file
/// entry must match a parameter.
pub fn load_params<R: Read>(params: &[&Param], r: &mut R) -> Result<(), CheckpointError> {
    let entries = read_checkpoint(r)?;
    let mut by_name: std::collections::HashMap<&str, &Tensor> =
        entries.iter().map(|(n, t)| (n.as_str(), t)).collect();
    for p in params {
        let t = by_name
            .remove(p.name())
            .ok_or_else(|| CheckpointError::NameMismatch(format!("'{}' not in file", p.name())))?;
        if t.shape() != p.shape() {
            return Err(CheckpointError::ShapeMismatch {
                name: p.name().to_string(),
                file: t.shape(),
                model: p.shape(),
            });
        }
        p.set_value(t.clone());
    }
    if let Some(extra) = by_name.keys().next() {
        return Err(CheckpointError::NameMismatch(format!(
            "'{extra}' in file but not in model"
        )));
    }
    Ok(())
}

/// Loads from a file path.
pub fn load_from_file(params: &[&Param], path: &Path) -> Result<(), CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load_params(params, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_tensor::TensorRng;

    fn params() -> Vec<Param> {
        let mut rng = TensorRng::seed_from(5);
        vec![
            Param::new("layer.w", Tensor::randn(3, 4, 1.0, &mut rng)),
            Param::new("layer.b", Tensor::randn(1, 4, 1.0, &mut rng)),
            Param::new("emb", Tensor::randn(10, 4, 1.0, &mut rng)),
        ]
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs, &mut buf).unwrap();

        let dst = params();
        // perturb destination so the load is observable
        for p in &dst {
            p.update(|v, _| v.scale_assign(0.0));
        }
        let drefs: Vec<&Param> = dst.iter().collect();
        load_params(&drefs, &mut buf.as_slice()).unwrap();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.value(), b.value(), "param {}", a.name());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let data = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00";
        let err = read_checkpoint(&mut data.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn missing_param_rejected() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs[..2], &mut buf).unwrap();
        let drefs: Vec<&Param> = src.iter().collect();
        let err = load_params(&drefs, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::NameMismatch(_)));
    }

    #[test]
    fn extra_file_entry_rejected() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs, &mut buf).unwrap();
        let dst = params();
        let drefs: Vec<&Param> = dst.iter().take(2).collect();
        let err = load_params(&drefs, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::NameMismatch(_)));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs, &mut buf).unwrap();
        let mut rng = TensorRng::seed_from(9);
        let dst = vec![
            Param::new("layer.w", Tensor::randn(4, 3, 1.0, &mut rng)), // transposed shape
            Param::new("layer.b", Tensor::randn(1, 4, 1.0, &mut rng)),
            Param::new("emb", Tensor::randn(10, 4, 1.0, &mut rng)),
        ];
        let drefs: Vec<&Param> = dst.iter().collect();
        let err = load_params(&drefs, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }));
    }

    #[test]
    fn truncated_checkpoint_is_format_error_at_every_length() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs, &mut buf).unwrap();
        // Every strict prefix must fail with Format, never Io or panic.
        for cut in [0, 2, 4, 7, 8, 11, 12, 20, buf.len() / 2, buf.len() - 1] {
            let err = read_checkpoint(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "cut at {cut}: got {err}"
            );
        }
    }

    #[test]
    fn tensor_helper_roundtrip_and_truncation() {
        let mut rng = TensorRng::seed_from(13);
        let t = Tensor::randn(5, 3, 1.0, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        assert_eq!(read_tensor(&mut buf.as_slice()).unwrap(), t);
        let err = read_tensor(&mut &buf[..buf.len() - 2]).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("nmcdr_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.nmck");
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        save_to_file(&refs, &path).unwrap();
        let dst = params();
        for p in &dst {
            p.update(|v, _| v.scale_assign(0.0));
        }
        let drefs: Vec<&Param> = dst.iter().collect();
        load_from_file(&drefs, &path).unwrap();
        assert_eq!(src[2].value(), dst[2].value());
        std::fs::remove_dir_all(&dir).ok();
    }
}
