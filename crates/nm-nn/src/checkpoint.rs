//! Parameter checkpointing.
//!
//! A minimal self-describing binary format (no external deps). Version 1
//! holds parameters only:
//!
//! ```text
//! magic  "NMCK"              4 bytes
//! version u32 LE             (1)
//! count   u32 LE
//! per parameter:
//!   name_len u32 LE, name bytes (UTF-8)
//!   rows u32 LE, cols u32 LE
//!   rows*cols f32 LE values
//! ```
//!
//! Version 2 appends named opaque **sections** (the trainer persists its
//! optimizer/RNG/early-stop state there) and an integrity checksum so a
//! flipped bit anywhere in the file is detected, not silently loaded:
//!
//! ```text
//! magic "NMCK", version u32 LE (2)
//! count u32 LE, parameters as in v1
//! n_sections u32 LE
//! per section: name_len u32 LE, name bytes, byte_len u64 LE, bytes
//! checksum u64 LE             (FNV-1a 64 of every preceding byte)
//! ```
//!
//! Loading matches parameters **by name** and fails loudly on any
//! missing name or shape mismatch — silent partial loads are how
//! checkpoint bugs hide. File writes go through [`atomic_write_bytes`]
//! (tmp + fsync + rename) so a crash mid-write leaves either the old or
//! the new file, never a torn hybrid.

use crate::Param;
use nm_tensor::Tensor;
use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"NMCK";
const VERSION: u32 = 1;
const VERSION_V2: u32 = 2;

/// Checkpoint errors.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    /// Not a checkpoint file / wrong version.
    Format(String),
    /// Parameter present in the file but not in the model, or vice
    /// versa.
    NameMismatch(String),
    /// Shapes differ for a same-named parameter.
    ShapeMismatch {
        name: String,
        file: (usize, usize),
        model: (usize, usize),
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "bad checkpoint format: {m}"),
            CheckpointError::NameMismatch(n) => write!(f, "parameter name mismatch: {n}"),
            CheckpointError::ShapeMismatch { name, file, model } => write!(
                f,
                "shape mismatch for '{name}': file {}x{}, model {}x{}",
                file.0, file.1, model.0, model.1
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes a `u32` little-endian (shared by the snapshot format in
/// `nm-serve`).
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Fills `buf`, turning a short read into a [`CheckpointError::Format`]
/// — a truncated file is a corrupt file, not an I/O failure.
fn read_exact_or_format<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), CheckpointError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::Format("truncated file".into())
        } else {
            CheckpointError::Io(e)
        }
    })
}

/// Reads a little-endian `u32` (shared by the snapshot format in
/// `nm-serve`). Truncation is a `Format` error.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact_or_format(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` little-endian.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `u64`. Truncation is a `Format` error.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    read_exact_or_format(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an `f32` little-endian.
pub fn write_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `f32`. Truncation is a `Format` error.
pub fn read_f32<R: Read>(r: &mut R) -> Result<f32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact_or_format(r, &mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Writes an `f64` little-endian.
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a little-endian `f64`. Truncation is a `Format` error.
pub fn read_f64<R: Read>(r: &mut R) -> Result<f64, CheckpointError> {
    let mut b = [0u8; 8];
    read_exact_or_format(r, &mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Writes a single byte.
pub fn write_u8<W: Write>(w: &mut W, v: u8) -> std::io::Result<()> {
    w.write_all(&[v])
}

/// Reads a single byte. Truncation is a `Format` error.
pub fn read_u8<R: Read>(r: &mut R) -> Result<u8, CheckpointError> {
    let mut b = [0u8; 1];
    read_exact_or_format(r, &mut b)?;
    Ok(b[0])
}

/// Writes a length-prefixed byte string (`u64` length + bytes).
pub fn write_bytes<W: Write>(w: &mut W, bytes: &[u8]) -> std::io::Result<()> {
    write_u64(w, bytes.len() as u64)?;
    w.write_all(bytes)
}

/// Reads a length-prefixed byte string. Unreasonable lengths and
/// truncation are `Format` errors.
pub fn read_bytes<R: Read>(r: &mut R) -> Result<Vec<u8>, CheckpointError> {
    let len = read_u64(r)?;
    if len > 1 << 32 {
        return Err(CheckpointError::Format(format!(
            "unreasonable byte-string length {len}"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    read_exact_or_format(r, &mut buf)?;
    Ok(buf)
}

/// FNV-1a 64-bit hash — the v2 integrity checksum. Not cryptographic;
/// it exists to catch torn writes and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes a tensor as `rows u32, cols u32, rows*cols f32 LE`.
pub fn write_tensor<W: Write>(w: &mut W, t: &Tensor) -> Result<(), CheckpointError> {
    write_u32(w, t.rows() as u32)?;
    write_u32(w, t.cols() as u32)?;
    for x in t.data() {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a tensor written by [`write_tensor`]. Truncation is a
/// `Format` error.
pub fn read_tensor<R: Read>(r: &mut R) -> Result<Tensor, CheckpointError> {
    let rows = read_u32(r)? as usize;
    let cols = read_u32(r)? as usize;
    if rows.saturating_mul(cols) > 1 << 28 {
        return Err(CheckpointError::Format(format!(
            "unreasonable tensor shape {rows}x{cols}"
        )));
    }
    let mut data = vec![0f32; rows * cols];
    let mut buf = [0u8; 4];
    for x in &mut data {
        read_exact_or_format(r, &mut buf)?;
        *x = f32::from_le_bytes(buf);
    }
    Tensor::from_vec(rows, cols, data).map_err(|e| CheckpointError::Format(e.to_string()))
}

/// Serializes parameters to a writer.
pub fn save_params<W: Write>(params: &[&Param], w: &mut W) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, params.len() as u32)?;
    for p in params {
        let name = p.name().as_bytes();
        write_u32(w, name.len() as u32)?;
        w.write_all(name)?;
        let v = p.value();
        write_u32(w, v.rows() as u32)?;
        write_u32(w, v.cols() as u32)?;
        for x in v.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Atomically replaces `path` with `bytes`: writes a temporary sibling
/// file, fsyncs it, renames it over `path`, then fsyncs the directory.
/// A crash at any byte leaves either the old file or the new one —
/// never a torn hybrid. Stray `.tmp` files from a crashed writer are
/// ignored by loaders and overwritten by the next save.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Format(format!("bad target path {}", path.display())))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let written = (|| -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = written.and_then(|()| std::fs::rename(&tmp, path)) {
        let _ = std::fs::remove_file(&tmp);
        return Err(CheckpointError::Io(e));
    }
    // Persist the rename itself; best-effort (some filesystems reject
    // directory fsync) — the data file is already durable.
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Saves parameters to a file path (atomic replace, v1 format).
pub fn save_to_file(params: &[&Param], path: &Path) -> Result<(), CheckpointError> {
    let mut buf = Vec::new();
    save_params(params, &mut buf)?;
    atomic_write_bytes(path, &buf)
}

/// A fully decoded checkpoint: named parameters plus (v2 only) named
/// opaque sections.
#[derive(Debug, Clone, Default)]
pub struct CheckpointData {
    pub params: Vec<(String, Tensor)>,
    pub sections: Vec<(String, Vec<u8>)>,
}

impl CheckpointData {
    /// The bytes of section `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }
}

/// Serializes parameters plus named sections as a v2 checkpoint
/// (checksummed). The returned buffer is what [`atomic_write_bytes`]
/// should persist.
pub fn encode_v2(
    params: &[&Param],
    sections: &[(&str, &[u8])],
) -> Result<Vec<u8>, CheckpointError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    write_u32(&mut buf, VERSION_V2)?;
    write_u32(&mut buf, params.len() as u32)?;
    for p in params {
        let name = p.name().as_bytes();
        write_u32(&mut buf, name.len() as u32)?;
        buf.extend_from_slice(name);
        write_tensor(&mut buf, &p.value())?;
    }
    write_u32(&mut buf, sections.len() as u32)?;
    for (name, bytes) in sections {
        let nb = name.as_bytes();
        write_u32(&mut buf, nb.len() as u32)?;
        buf.extend_from_slice(nb);
        write_bytes(&mut buf, bytes)?;
    }
    let sum = fnv1a64(&buf);
    write_u64(&mut buf, sum)?;
    Ok(buf)
}

/// Saves a v2 checkpoint (params + sections) atomically to `path`.
pub fn save_v2_to_file(
    params: &[&Param],
    sections: &[(&str, &[u8])],
    path: &Path,
) -> Result<(), CheckpointError> {
    atomic_write_bytes(path, &encode_v2(params, sections)?)
}

fn read_name<R: Read>(r: &mut R) -> Result<String, CheckpointError> {
    let name_len = read_u32(r)? as usize;
    if name_len > 1 << 20 {
        return Err(CheckpointError::Format("unreasonable name length".into()));
    }
    let mut name = vec![0u8; name_len];
    read_exact_or_format(r, &mut name)?;
    String::from_utf8(name).map_err(|_| CheckpointError::Format("non-utf8 name".into()))
}

/// Decodes a checkpoint from a full in-memory buffer, accepting both
/// v1 (params only) and v2 (params + sections + checksum). For v2 the
/// checksum is verified **before** any structural parsing, so a flipped
/// bit anywhere in the file — header, tensor data, or section bytes —
/// is a `Format` error, never a silent wrong load.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointData, CheckpointError> {
    let mut r: &[u8] = bytes;
    let mut magic = [0u8; 4];
    read_exact_or_format(&mut r, &mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION && version != VERSION_V2 {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    if version == VERSION_V2 {
        if bytes.len() < 8 {
            return Err(CheckpointError::Format("truncated file".into()));
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv1a64(body) != stored {
            return Err(CheckpointError::Format(
                "checksum mismatch (torn write or corruption)".into(),
            ));
        }
        // Re-slice the reader past magic+version, excluding the trailer.
        r = body
            .get(8..)
            .ok_or_else(|| CheckpointError::Format("truncated file".into()))?;
    }
    let count = read_u32(&mut r)? as usize;
    let mut params = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let name = read_name(&mut r)?;
        params.push((name, read_tensor(&mut r)?));
    }
    let mut sections = Vec::new();
    if version == VERSION_V2 {
        let n_sections = read_u32(&mut r)? as usize;
        for _ in 0..n_sections {
            let name = read_name(&mut r)?;
            sections.push((name, read_bytes(&mut r)?));
        }
        if !r.is_empty() {
            return Err(CheckpointError::Format(format!(
                "{} trailing bytes after last section",
                r.len()
            )));
        }
    }
    Ok(CheckpointData { params, sections })
}

/// Reads a checkpoint into `(name, tensor)` pairs (v1 or v2; v2
/// sections are decoded and discarded).
pub fn read_checkpoint<R: Read>(r: &mut R) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    Ok(decode_checkpoint(&bytes)?.params)
}

/// Assigns decoded `(name, tensor)` entries onto a parameter set,
/// matching strictly by name. Every model parameter must be present and
/// every entry must match a parameter.
pub fn assign_params(
    params: &[&Param],
    entries: &[(String, Tensor)],
) -> Result<(), CheckpointError> {
    let mut by_name: std::collections::HashMap<&str, &Tensor> =
        entries.iter().map(|(n, t)| (n.as_str(), t)).collect();
    for p in params {
        let t = by_name
            .remove(p.name())
            .ok_or_else(|| CheckpointError::NameMismatch(format!("'{}' not in file", p.name())))?;
        if t.shape() != p.shape() {
            return Err(CheckpointError::ShapeMismatch {
                name: p.name().to_string(),
                file: t.shape(),
                model: p.shape(),
            });
        }
        p.set_value(t.clone());
    }
    if let Some(extra) = by_name.keys().next() {
        return Err(CheckpointError::NameMismatch(format!(
            "'{extra}' in file but not in model"
        )));
    }
    Ok(())
}

/// Loads a checkpoint into a parameter set, matching strictly by name.
/// Every model parameter must be present in the file and every file
/// entry must match a parameter.
pub fn load_params<R: Read>(params: &[&Param], r: &mut R) -> Result<(), CheckpointError> {
    let entries = read_checkpoint(r)?;
    assign_params(params, &entries)
}

/// Loads from a file path.
pub fn load_from_file(params: &[&Param], path: &Path) -> Result<(), CheckpointError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load_params(params, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_tensor::TensorRng;

    fn params() -> Vec<Param> {
        let mut rng = TensorRng::seed_from(5);
        vec![
            Param::new("layer.w", Tensor::randn(3, 4, 1.0, &mut rng)),
            Param::new("layer.b", Tensor::randn(1, 4, 1.0, &mut rng)),
            Param::new("emb", Tensor::randn(10, 4, 1.0, &mut rng)),
        ]
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs, &mut buf).unwrap();

        let dst = params();
        // perturb destination so the load is observable
        for p in &dst {
            p.update(|v, _| v.scale_assign(0.0));
        }
        let drefs: Vec<&Param> = dst.iter().collect();
        load_params(&drefs, &mut buf.as_slice()).unwrap();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.value(), b.value(), "param {}", a.name());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let data = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00";
        let err = read_checkpoint(&mut data.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn missing_param_rejected() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs[..2], &mut buf).unwrap();
        let drefs: Vec<&Param> = src.iter().collect();
        let err = load_params(&drefs, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::NameMismatch(_)));
    }

    #[test]
    fn extra_file_entry_rejected() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs, &mut buf).unwrap();
        let dst = params();
        let drefs: Vec<&Param> = dst.iter().take(2).collect();
        let err = load_params(&drefs, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::NameMismatch(_)));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs, &mut buf).unwrap();
        let mut rng = TensorRng::seed_from(9);
        let dst = vec![
            Param::new("layer.w", Tensor::randn(4, 3, 1.0, &mut rng)), // transposed shape
            Param::new("layer.b", Tensor::randn(1, 4, 1.0, &mut rng)),
            Param::new("emb", Tensor::randn(10, 4, 1.0, &mut rng)),
        ];
        let drefs: Vec<&Param> = dst.iter().collect();
        let err = load_params(&drefs, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }));
    }

    #[test]
    fn truncated_checkpoint_is_format_error_at_every_length() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = Vec::new();
        save_params(&refs, &mut buf).unwrap();
        // Every strict prefix must fail with Format, never Io or panic.
        for cut in [0, 2, 4, 7, 8, 11, 12, 20, buf.len() / 2, buf.len() - 1] {
            let err = read_checkpoint(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "cut at {cut}: got {err}"
            );
        }
    }

    #[test]
    fn tensor_helper_roundtrip_and_truncation() {
        let mut rng = TensorRng::seed_from(13);
        let t = Tensor::randn(5, 3, 1.0, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        assert_eq!(read_tensor(&mut buf.as_slice()).unwrap(), t);
        let err = read_tensor(&mut &buf[..buf.len() - 2]).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn v2_roundtrip_restores_params_and_sections() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let sec_a = vec![1u8, 2, 3, 4, 5];
        let sec_b = b"trainer state bytes".to_vec();
        let buf = encode_v2(&refs, &[("alpha", &sec_a), ("trainer", &sec_b)]).unwrap();

        let data = decode_checkpoint(&buf).unwrap();
        assert_eq!(data.params.len(), 3);
        assert_eq!(data.section("alpha"), Some(sec_a.as_slice()));
        assert_eq!(data.section("trainer"), Some(sec_b.as_slice()));
        assert_eq!(data.section("nope"), None);

        let dst = params();
        for p in &dst {
            p.update(|v, _| v.scale_assign(0.0));
        }
        let drefs: Vec<&Param> = dst.iter().collect();
        assign_params(&drefs, &data.params).unwrap();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.value(), b.value(), "param {}", a.name());
        }

        // v2 files load through the v1-era entry points too.
        load_params(&drefs, &mut buf.as_slice()).unwrap();
    }

    #[test]
    fn v2_truncation_is_format_error_at_every_length() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let sec = vec![9u8; 33];
        let buf = encode_v2(&refs, &[("trainer", &sec)]).unwrap();
        for cut in 0..buf.len() {
            let err = decode_checkpoint(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Format(_)),
                "cut at {cut}: got {err}"
            );
        }
    }

    #[test]
    fn v2_bitflip_anywhere_is_format_error() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let sec = vec![7u8; 19];
        let buf = encode_v2(&refs, &[("trainer", &sec)]).unwrap();
        // Flip a single bit at every byte position — header, parameter
        // names, tensor payloads, section bytes, and the checksum
        // trailer itself must all be caught.
        for i in 0..buf.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = buf.clone();
                bad[i] ^= bit;
                let err = decode_checkpoint(&bad).unwrap_err();
                assert!(
                    matches!(err, CheckpointError::Format(_)),
                    "flip at byte {i} bit {bit:#x}: got {err}"
                );
            }
        }
    }

    #[test]
    fn v2_trailing_garbage_rejected() {
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        let mut buf = encode_v2(&refs, &[]).unwrap();
        buf.push(0);
        let err = decode_checkpoint(&buf).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_tmp() {
        let dir = std::env::temp_dir().join(format!("nmcdr_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.nmck");
        atomic_write_bytes(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write_bytes(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // no stray tmp files survive a successful write
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "stray tmp files: {strays:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_failure_leaves_old_file_intact() {
        let dir = std::env::temp_dir().join(format!("nmcdr_atomic_fail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.nmck");
        atomic_write_bytes(&path, b"good").unwrap();
        // Writing over the same path via a *sub*directory that doesn't
        // exist fails; the original must be untouched.
        let bad = dir.join("missing_subdir").join("state.nmck");
        assert!(atomic_write_bytes(&bad, b"never").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"good");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("nmcdr_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.nmck");
        let src = params();
        let refs: Vec<&Param> = src.iter().collect();
        save_to_file(&refs, &path).unwrap();
        let dst = params();
        for p in &dst {
            p.update(|v, _| v.scale_assign(0.0));
        }
        let drefs: Vec<&Param> = dst.iter().collect();
        load_from_file(&drefs, &path).unwrap();
        assert_eq!(src[2].value(), dst[2].value());
        std::fs::remove_dir_all(&dir).ok();
    }
}
