//! Core layers: Linear, Embedding, MLP.

use crate::{Module, Param};
use nm_autograd::{Tape, Var};
use nm_tensor::{Tensor, TensorRng};
use std::rc::Rc;

/// Activation selector for [`Mlp`] hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
    /// Identity (logits output).
    None,
}

impl Activation {
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::None => x,
        }
    }
}

/// Fully-connected layer `x W + b` (bias optional).
pub struct Linear {
    w: Param,
    b: Option<Param>,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new(name: &str, fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Self {
        Self {
            w: Param::new(
                format!("{name}.w"),
                Tensor::xavier_uniform(fan_in, fan_out, rng),
            ),
            b: Some(Param::new(format!("{name}.b"), Tensor::zeros(1, fan_out))),
        }
    }

    /// Without bias (the paper's Eq. 15 mixing matrices are bias-free).
    pub fn new_no_bias(name: &str, fan_in: usize, fan_out: usize, rng: &mut TensorRng) -> Self {
        Self {
            w: Param::new(
                format!("{name}.w"),
                Tensor::xavier_uniform(fan_in, fan_out, rng),
            ),
            b: None,
        }
    }

    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let w = self.w.bind(tape);
        let y = tape.matmul(x, w);
        match &self.b {
            Some(b) => {
                let b = b.bind(tape);
                tape.add(y, b)
            }
            None => y,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.shape().0
    }

    pub fn out_dim(&self) -> usize {
        self.w.shape().1
    }

    /// The weight parameter (for tests / inspection).
    pub fn weight(&self) -> &Param {
        &self.w
    }

    /// The bias parameter, if this layer has one (snapshot export).
    pub fn bias(&self) -> Option<&Param> {
        self.b.as_ref()
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.w];
        if let Some(b) = &self.b {
            v.push(b);
        }
        v
    }
}

/// A learnable `n x d` lookup table (Eq. 1's `E^Z`).
pub struct Embedding {
    table: Param,
}

impl Embedding {
    /// Normal(0, std)-initialized embedding table.
    pub fn new(name: &str, n: usize, dim: usize, std: f32, rng: &mut TensorRng) -> Self {
        Self {
            table: Param::new(name.to_string(), Tensor::randn(n, dim, std, rng)),
        }
    }

    /// Looks up a batch of row indices.
    pub fn lookup(&self, tape: &mut Tape, indices: Rc<Vec<u32>>) -> Var {
        let t = self.table.bind(tape);
        tape.gather_rows(t, indices)
    }

    /// Binds the full table (GNN encoders propagate over all rows).
    pub fn full(&self, tape: &mut Tape) -> Var {
        self.table.bind(tape)
    }

    pub fn n(&self) -> usize {
        self.table.shape().0
    }

    pub fn dim(&self) -> usize {
        self.table.shape().1
    }

    /// Raw table snapshot (evaluation-time scoring without a tape).
    pub fn table_value(&self) -> Tensor {
        self.table.value()
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<&Param> {
        vec![&self.table]
    }
}

/// Stacked fully-connected layers with a hidden activation and identity
/// output (logits) — Eq. 20's `MLPs`.
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
}

impl Mlp {
    /// `dims = [in, h1, ..., out]` gives `dims.len()-1` layers.
    pub fn new(name: &str, dims: &[usize], hidden_act: Activation, rng: &mut TensorRng) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Self { layers, hidden_act }
    }

    pub fn forward(&self, tape: &mut Tape, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, x);
            if i < last {
                x = self.hidden_act.apply(tape, x);
            }
        }
        x
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    /// The `i`-th linear layer (weight inspection, stability analysis).
    pub fn layer(&self, i: usize) -> &Linear {
        &self.layers[i]
    }

    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// The activation applied between hidden layers (snapshot export).
    pub fn hidden_act(&self) -> Activation {
        self.hidden_act
    }
}

impl Module for Mlp {
    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TensorRng {
        TensorRng::seed_from(42)
    }

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut r = rng();
        let lin = Linear::new("l", 3, 2, &mut r);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(4, 3));
        let y = lin.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (4, 2));
    }

    #[test]
    fn linear_trains_toward_target() {
        // one-step gradient sanity: loss decreases after an SGD-style update
        let mut r = rng();
        let lin = Linear::new("l", 2, 1, &mut r);
        let x = Tensor::new(4, 2, vec![1., 0., 0., 1., 1., 1., 0., 0.]);
        let target = Rc::new(Tensor::new(4, 1, vec![1., 0., 1., 0.]));

        let loss_at = |lin: &Linear| {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = lin.forward(&mut tape, xv);
            let l = tape.bce_with_logits_mean(y, Rc::clone(&target));
            tape.value(l).item()
        };
        let before = loss_at(&lin);
        for _ in 0..50 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let y = lin.forward(&mut tape, xv);
            let l = tape.bce_with_logits_mean(y, Rc::clone(&target));
            tape.backward(l);
            for p in lin.params() {
                p.absorb_grad(&tape);
                p.update(|v, g| v.axpy(-0.5, g));
                p.zero_grad();
            }
        }
        let after = loss_at(&lin);
        assert!(after < before * 0.5, "loss {before} -> {after}");
    }

    #[test]
    fn embedding_lookup_rows() {
        let mut r = rng();
        let emb = Embedding::new("e", 5, 3, 0.1, &mut r);
        let mut tape = Tape::new();
        let v = emb.lookup(&mut tape, Rc::new(vec![4, 0]));
        assert_eq!(tape.value(v).shape(), (2, 3));
        let table = emb.table_value();
        assert_eq!(tape.value(v).row_slice(0), table.row_slice(4));
        assert_eq!(tape.value(v).row_slice(1), table.row_slice(0));
    }

    #[test]
    fn embedding_only_touched_rows_get_grads() {
        let mut r = rng();
        let emb = Embedding::new("e", 4, 2, 0.1, &mut r);
        let mut tape = Tape::new();
        let v = emb.lookup(&mut tape, Rc::new(vec![1]));
        let l = tape.sum_all(v);
        tape.backward(l);
        nm_nn_absorb(&emb, &tape);
        let g = emb.params()[0].grad();
        assert_eq!(g.row_slice(0), &[0., 0.]);
        assert_eq!(g.row_slice(1), &[1., 1.]);
        assert_eq!(g.row_slice(2), &[0., 0.]);
    }

    fn nm_nn_absorb(m: &dyn Module, tape: &Tape) {
        for p in m.params() {
            p.absorb_grad(tape);
        }
    }

    #[test]
    fn mlp_stacks_and_param_count() {
        let mut r = rng();
        let mlp = Mlp::new("m", &[4, 8, 1], Activation::Relu, &mut r);
        // params: 4*8 + 8 + 8*1 + 1 = 49
        assert_eq!(mlp.param_count(), 49);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(2, 4));
        let y = mlp.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn mlp_requires_two_dims() {
        let mut r = rng();
        let _ = Mlp::new("m", &[4], Activation::Relu, &mut r);
    }
}
