//! # nm-nn
//!
//! Neural-network building blocks over `nm-autograd`:
//!
//! * [`Param`] — a trainable tensor living *outside* the per-step tape,
//!   with gradient accumulation buffers and per-tape leaf binding;
//! * [`Linear`], [`Embedding`], [`Mlp`] — the layers every model in the
//!   workspace is assembled from;
//! * [`GateFusion`] — the paper's fine-grained sigmoid gate
//!   (Eq. 10 / Eq. 16): `tanh((1-H) ⊙ a + H ⊙ b)` with
//!   `H = σ(a W_a + b_a + b W_b + b_b)`;
//! * [`Activation`] — activation selector for MLP stacks.
//!
//! ## Lifecycle per training step
//!
//! ```text
//! let mut tape = Tape::new();
//! let y = model.forward(&mut tape, ...);   // params bind lazily as leaves
//! let loss = ...;
//! tape.backward(loss);
//! for p in model.params() { p.absorb_grad(&tape); }
//! optimizer.step(&model.params());
//! ```

pub mod checkpoint;
mod gate;
mod layers;
mod param;

pub use gate::GateFusion;
pub use layers::{Activation, Embedding, Linear, Mlp};
pub use param::Param;

/// Anything that exposes trainable parameters.
pub trait Module {
    /// All trainable parameters, in a stable order (optimizer state is
    /// keyed by position).
    fn params(&self) -> Vec<&Param>;

    /// Total scalar parameter count (the paper's §III-B-6 efficiency
    /// statistic).
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.value().len()).sum()
    }
}

/// Absorbs gradients from `tape` into every parameter of `module`.
/// Call after `tape.backward(..)`.
pub fn absorb_all(module: &dyn Module, tape: &nm_autograd::Tape) {
    for p in module.params() {
        p.absorb_grad(tape);
    }
}
