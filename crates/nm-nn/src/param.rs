//! Trainable parameters.

use nm_autograd::{Tape, Var};
use nm_tensor::Tensor;
use std::cell::{Cell, RefCell};

/// A trainable tensor that outlives the per-step [`Tape`].
///
/// A `Param` owns its value and a same-shaped gradient accumulation
/// buffer. During a forward pass it binds itself onto the tape as a leaf
/// (at most once per tape — repeated `bind` calls on the same tape
/// return the cached [`Var`]); after `backward` the tape's gradient is
/// absorbed into the buffer with [`Param::absorb_grad`], and the
/// optimizer then updates `value` from `grad`.
///
/// Single-threaded by design (interior mutability via `Cell`/`RefCell`);
/// the training loops in this workspace are single-core.
pub struct Param {
    name: String,
    value: RefCell<Tensor>,
    grad: RefCell<Tensor>,
    binding: Cell<Option<(u64, Var)>>,
}

impl std::fmt::Debug for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.value.borrow();
        write!(f, "Param({}, {}x{})", self.name, v.rows(), v.cols())
    }
}

impl Param {
    /// Wraps an initialized tensor as a parameter.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.rows(), value.cols());
        Self {
            name: name.into(),
            value: RefCell::new(value),
            grad: RefCell::new(grad),
            binding: Cell::new(None),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshot of the current value (clone; params are small relative
    /// to training compute and this keeps borrow scopes trivial).
    pub fn value(&self) -> Tensor {
        self.value.borrow().clone()
    }

    /// Snapshot of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.grad.borrow().clone()
    }

    pub fn shape(&self) -> (usize, usize) {
        self.value.borrow().shape()
    }

    /// Binds this parameter onto `tape` as a trainable leaf, caching the
    /// binding per tape id.
    pub fn bind(&self, tape: &mut Tape) -> Var {
        if let Some((tid, var)) = self.binding.get() {
            if tid == tape.id() {
                return var;
            }
        }
        let var = tape.leaf(self.value.borrow().clone());
        self.binding.set(Some((tape.id(), var)));
        var
    }

    /// Adds the tape's gradient for this parameter (if it was bound on
    /// this tape and received one) into the accumulation buffer, then
    /// clears the binding.
    pub fn absorb_grad(&self, tape: &Tape) {
        if let Some((tid, var)) = self.binding.get() {
            if tid == tape.id() {
                if let Some(g) = tape.grad(var) {
                    self.grad.borrow_mut().add_assign(g);
                }
                self.binding.set(None);
            }
        }
    }

    /// Zeroes the gradient buffer (start of a step).
    pub fn zero_grad(&self) {
        self.grad.borrow_mut().zero_assign();
    }

    /// Applies `value += -lr * grad`-style updates via a closure over
    /// `(value, grad)`. The optimizer's entry point.
    pub fn update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let g = self.grad.borrow();
        let mut v = self.value.borrow_mut();
        f(&mut v, &g);
    }

    /// Directly overwrites the value (tests, weight loading).
    pub fn set_value(&self, value: Tensor) {
        assert_eq!(
            self.shape(),
            value.shape(),
            "Param::set_value: shape mismatch on {}",
            self.name
        );
        *self.value.borrow_mut() = value;
    }

    /// Global L2 norm of the gradient buffer.
    pub fn grad_norm_sq(&self) -> f32 {
        self.grad.borrow().sum_squares()
    }

    /// Squared L2 norm of the value buffer, computed in place — unlike
    /// `value().sum_squares()` this allocates nothing, so observation
    /// paths (the trainer's norm telemetry) stay invisible to the
    /// profiler's allocation accounting.
    pub fn value_norm_sq(&self) -> f32 {
        self.value.borrow().sum_squares()
    }

    /// Scales the gradient buffer in place (gradient clipping).
    pub fn scale_grad(&self, s: f32) {
        self.grad.borrow_mut().scale_assign(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_caches_per_tape() {
        let p = Param::new("w", Tensor::scalar(2.0));
        let mut t1 = Tape::new();
        let a = p.bind(&mut t1);
        let b = p.bind(&mut t1);
        assert_eq!(a, b);
        assert_eq!(t1.len(), 1);
        let mut t2 = Tape::new();
        let c = p.bind(&mut t2);
        // new tape gets a fresh leaf at index 0
        assert_eq!(c, a);
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn absorb_accumulates_and_clears_binding() {
        let p = Param::new("w", Tensor::scalar(3.0));
        let mut tape = Tape::new();
        let v = p.bind(&mut tape);
        let l = tape.sum_all(v);
        tape.backward(l);
        p.absorb_grad(&tape);
        assert_eq!(p.grad().item(), 1.0);
        // absorbing twice is a no-op (binding cleared)
        p.absorb_grad(&tape);
        assert_eq!(p.grad().item(), 1.0);
    }

    #[test]
    fn grads_accumulate_across_tapes_until_zeroed() {
        let p = Param::new("w", Tensor::scalar(1.0));
        for _ in 0..3 {
            let mut tape = Tape::new();
            let v = p.bind(&mut tape);
            let y = tape.scale(v, 2.0);
            let l = tape.sum_all(y);
            tape.backward(l);
            p.absorb_grad(&tape);
        }
        assert_eq!(p.grad().item(), 6.0);
        p.zero_grad();
        assert_eq!(p.grad().item(), 0.0);
    }

    #[test]
    fn update_applies_closure() {
        let p = Param::new("w", Tensor::scalar(1.0));
        let mut tape = Tape::new();
        let v = p.bind(&mut tape);
        let l = tape.sum_all(v);
        tape.backward(l);
        p.absorb_grad(&tape);
        p.update(|v, g| v.axpy(-0.5, g));
        assert_eq!(p.value().item(), 0.5);
    }

    #[test]
    fn param_used_twice_gets_summed_gradient() {
        // y = w*w_same_leaf... actually y = w + w via two binds -> same leaf
        let p = Param::new("w", Tensor::scalar(4.0));
        let mut tape = Tape::new();
        let a = p.bind(&mut tape);
        let b = p.bind(&mut tape);
        let y = tape.add(a, b);
        let l = tape.sum_all(y);
        tape.backward(l);
        p.absorb_grad(&tape);
        assert_eq!(p.grad().item(), 2.0);
    }
}
