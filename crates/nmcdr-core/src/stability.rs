//! Model-stability analysis (paper §II-H).
//!
//! The paper derives an instability upper bound (Eq. 31) for a
//! compressed three-layer view of the model
//! (heterogeneous encoder → fully-connected matching layer → prediction):
//!
//! ```text
//! ‖z_{u,v} − z_{u',v}‖₂ ≤ C_sf C_sp² ‖W_a³‖₂ ( ‖W_a²‖₂‖W_a¹‖₂
//!     + (Σ_{v_j∈N_u} 1/n_j)/(N−1) ‖W_n²‖₂‖W_n¹‖₂ ) ‖x_u − x_u'‖₂
//! ```
//!
//! and argues that distinguishing head and tail users with **distinct**
//! matching transforms tunes this bound per user class without a
//! per-user parameter explosion. This module computes the bound from a
//! trained [`crate::NmcdrModel`]'s actual weights, per user, so the
//! argument is checkable: the bound must be finite, positive, scale
//! linearly with the weights, and differ between head and tail users
//! exactly through `W_head` vs `W_tail`.

use crate::NmcdrModel;
use nm_models::{CdrModel, Domain};
use nm_tensor::Tensor;

/// Spectral norm (largest singular value) via power iteration on
/// `AᵀA`. Deterministic start vector; `iters` of 30 is plenty for the
/// small matrices involved.
pub fn spectral_norm(a: &Tensor, iters: usize) -> f32 {
    let (r, c) = a.shape();
    assert!(r > 0 && c > 0, "spectral_norm: empty matrix");
    let mut v = vec![1.0f32 / (c as f32).sqrt(); c];
    let mut sigma = 0.0f32;
    for _ in 0..iters {
        // w = A v
        let mut w = vec![0.0f32; r];
        for (i, wi) in w.iter_mut().enumerate() {
            *wi = a.row_slice(i).iter().zip(&v).map(|(x, y)| x * y).sum();
        }
        // u = Aᵀ w
        let mut u = vec![0.0f32; c];
        for (i, &wi) in w.iter().enumerate() {
            if wi == 0.0 {
                continue;
            }
            for (uj, &aij) in u.iter_mut().zip(a.row_slice(i)) {
                *uj += aij * wi;
            }
        }
        let n: f32 = u.iter().map(|x| x * x).sum::<f32>().sqrt();
        if n < 1e-20 {
            return 0.0;
        }
        sigma = n.sqrt();
        for (vj, uj) in v.iter_mut().zip(&u) {
            *vj = uj / n;
        }
    }
    sigma
}

/// Eq. 31 instability bound for one user (the Lipschitz factor
/// multiplying `‖x_u − x_u'‖`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityBound {
    /// The full coefficient of Eq. 31.
    pub bound: f32,
    /// `‖W_a²‖‖W_a¹‖` — the self-path term.
    pub self_path: f32,
    /// `(Σ 1/n_j)/(N−1) ‖W_n²‖‖W_n¹‖` — the neighbour-path term.
    pub neighbor_path: f32,
}

/// Computes the per-user Eq. 31 bound for `domain`, using the model's
/// actual weights:
///
/// * `W_a¹ = W_n¹` — the first heterogeneous-encoder transform,
/// * `W_a² / W_n²` — the matching transform of the *user's class*
///   (`W_head` for head users, `W_tail` for tail users: the paper's
///   §II-H design point),
/// * `W_a³` — the first prediction-MLP layer,
/// * `C_sf = C_sp = 1` (softmax and softplus are 1-Lipschitz).
pub fn instability_bounds(model: &NmcdrModel, domain: Domain) -> Vec<StabilityBound> {
    let z = domain.index();
    let task = model.task();
    let (graph, partition) = match domain {
        Domain::A => (&task.graph_a, &task.partition_a),
        Domain::B => (&task.graph_b, &task.partition_b),
    };
    let w1 = spectral_norm(&model.hge_weight(z, 0), 30);
    let w2_head = spectral_norm(&model.head_weight(z), 30);
    let w2_tail = spectral_norm(&model.tail_weight(z), 30);
    let w3 = spectral_norm(&model.pred_first_weight(z), 30);
    let item_degrees = graph.item_degrees();
    let n_total = graph.n_users().max(2) as f32;
    (0..graph.n_users())
        .map(|u| {
            let sum_inv: f32 = graph
                .items_of(u)
                .iter()
                .map(|&j| 1.0 / item_degrees[j as usize].max(1) as f32)
                .sum();
            let w2 = match partition.class_of(u) {
                nm_graph::UserClass::Head => w2_head,
                nm_graph::UserClass::Tail => w2_tail,
            };
            let self_path = w2 * w1;
            let neighbor_path = sum_inv / (n_total - 1.0) * w2 * w1;
            StabilityBound {
                bound: w3 * (self_path + neighbor_path),
                self_path,
                neighbor_path,
            }
        })
        .collect()
}

/// Summary statistics of the bounds over a domain's users, split by
/// head/tail class — the quantity the paper's argument is about.
#[derive(Debug, Clone, Copy)]
pub struct StabilitySummary {
    pub mean_head: f32,
    pub mean_tail: f32,
    pub max: f32,
}

pub fn summarize(model: &NmcdrModel, domain: Domain) -> StabilitySummary {
    let bounds = instability_bounds(model, domain);
    let task = model.task();
    let partition = match domain {
        Domain::A => &task.partition_a,
        Domain::B => &task.partition_b,
    };
    let (mut sh, mut nh, mut st, mut nt, mut mx) = (0.0f32, 0usize, 0.0f32, 0usize, 0.0f32);
    for (u, b) in bounds.iter().enumerate() {
        mx = mx.max(b.bound);
        match partition.class_of(u) {
            nm_graph::UserClass::Head => {
                sh += b.bound;
                nh += 1;
            }
            nm_graph::UserClass::Tail => {
                st += b.bound;
                nt += 1;
            }
        }
    }
    StabilitySummary {
        mean_head: if nh > 0 { sh / nh as f32 } else { 0.0 },
        mean_tail: if nt > 0 { st / nt as f32 } else { 0.0 },
        max: mx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NmcdrConfig;
    use nm_data::{generate::generate, Scenario};
    use nm_models::{CdrTask, TaskConfig};
    fn model() -> NmcdrModel {
        let mut cfg = Scenario::ClothSport.config(0.002);
        cfg.n_users_a = 80;
        cfg.n_users_b = 80;
        cfg.n_items_a = 45;
        cfg.n_items_b = 45;
        cfg.n_overlap = 30;
        let task = CdrTask::build(generate(&cfg), TaskConfig::default());
        NmcdrModel::new(
            task,
            NmcdrConfig {
                dim: 8,
                match_neighbors: 16,
                ..Default::default()
            },
        )
    }

    #[test]
    fn spectral_norm_of_identity_is_one() {
        let i = Tensor::eye(5);
        assert!((spectral_norm(&i, 30) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn spectral_norm_matches_known_diagonal() {
        let mut d = Tensor::zeros(3, 3);
        d.set(0, 0, 2.0);
        d.set(1, 1, -7.0);
        d.set(2, 2, 0.5);
        assert!((spectral_norm(&d, 50) - 7.0).abs() < 1e-3);
    }

    #[test]
    fn spectral_norm_scales_linearly() {
        let mut rng = nm_tensor::TensorRng::seed_from(3);
        let a = Tensor::randn(6, 4, 1.0, &mut rng);
        let n1 = spectral_norm(&a, 50);
        let n2 = spectral_norm(&a.scale(3.0), 50);
        assert!((n2 / n1 - 3.0).abs() < 1e-3);
    }

    #[test]
    fn bounds_are_finite_positive_and_per_class() {
        let m = model();
        let bounds = instability_bounds(&m, Domain::A);
        assert_eq!(bounds.len(), m.task().graph_a.n_users());
        for b in &bounds {
            assert!(b.bound.is_finite() && b.bound > 0.0);
            assert!(b.neighbor_path <= b.self_path * 1.5 + 1e-3);
        }
        let s = summarize(&m, Domain::A);
        assert!(s.mean_head > 0.0 && s.mean_tail > 0.0);
        assert!(s.max >= s.mean_head.max(s.mean_tail));
        // head and tail users see different bounds through distinct
        // matching transforms (unless init coincidentally equalizes
        // the spectral norms, which the seeded init does not)
        assert!((s.mean_head - s.mean_tail).abs() > 1e-6);
    }
}
