//! NMCDR hyperparameters and ablation switches.

/// Which pieces of the model are disabled — Table IX's variants plus
/// two design ablations DESIGN.md calls out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ablation {
    /// `w/o-Igm`: remove the intra node matching component.
    pub no_intra_matching: bool,
    /// `w/o-Cgm`: remove the inter node matching component.
    pub no_inter_matching: bool,
    /// `w/o-Inc`: remove the intra node complementing module.
    pub no_complementing: bool,
    /// `w/o-Sup`: remove the companion objectives (final loss only).
    pub no_companion: bool,
    /// Replace the Eq. 10/16 gates with plain addition.
    pub gate_off: bool,
}

impl Ablation {
    pub fn none() -> Self {
        Self::default()
    }
}

/// Candidate set for the complementing module's virtual links (Eq. 18).
///
/// The paper's notation sums over observed neighbours, but the stated
/// intent is to *complement missing interactions*; the default therefore
/// mixes observed items with sampled non-observed ones. The
/// observed-only variant is kept for ablation (see DESIGN.md,
/// "Substitutions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComplementCandidates {
    /// Observed neighbours (up to a cap) plus uniformly sampled
    /// non-observed items, `total` candidates per user.
    ObservedPlusSampled { total: usize, max_observed: usize },
    /// Only observed neighbours, capped (the literal Eq. 18 reading).
    ObservedOnly { max_observed: usize },
}

impl Default for ComplementCandidates {
    fn default() -> Self {
        ComplementCandidates::ObservedPlusSampled {
            total: 16,
            max_observed: 8,
        }
    }
}

/// Full NMCDR configuration. The paper's values (D = D_hge = D_igm =
/// D_cgm = D_ref = 128, K_head = 7, 512 matching neighbours, all loss
/// weights 1) are kept as relative defaults, with the embedding width
/// scaled to the workspace's CPU budget.
#[derive(Debug, Clone)]
pub struct NmcdrConfig {
    /// Embedding and transformation width (the paper uses one width for
    /// D, D_hge, D_igm, D_cgm, D_ref; so do we).
    pub dim: usize,
    /// Head/tail discrimination threshold (Eq. 5; paper: 7).
    pub k_head: usize,
    /// Matching neighbours sampled per bridge (paper default 512,
    /// swept 128–1024 in Fig. 3).
    pub match_neighbors: usize,
    /// Heterogeneous-encoder aggregation layers.
    pub hge_layers: usize,
    /// Intra-to-inter matching passes (paper: 3). Weights are shared
    /// across passes (recurrent application), keeping the parameter
    /// count independent of depth.
    pub matching_layers: usize,
    /// Complementing module passes (paper: 2).
    pub inc_layers: usize,
    /// Companion/final loss weights `w1..w8` (Eq. 22/24; paper: all 1).
    pub loss_weights: [f32; 8],
    /// Complement candidate construction.
    pub complement: ComplementCandidates,
    /// Resample matching graphs and complement candidates every epoch.
    pub resample_each_epoch: bool,
    pub ablation: Ablation,
    pub seed: u64,
}

impl Default for NmcdrConfig {
    fn default() -> Self {
        Self {
            dim: 16,
            k_head: 7,
            match_neighbors: 64,
            hge_layers: 1,
            matching_layers: 1,
            inc_layers: 1,
            loss_weights: [1.0; 8],
            complement: ComplementCandidates::default(),
            resample_each_epoch: true,
            ablation: Ablation::none(),
            seed: 99,
        }
    }
}

impl NmcdrConfig {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be positive".into());
        }
        if self.match_neighbors == 0 {
            return Err("match_neighbors must be positive".into());
        }
        if self.hge_layers == 0 {
            return Err("hge_layers must be positive".into());
        }
        if self.matching_layers == 0 {
            return Err("matching_layers must be positive".into());
        }
        match self.complement {
            ComplementCandidates::ObservedPlusSampled {
                total,
                max_observed,
            } => {
                if total == 0 || max_observed > total {
                    return Err(format!(
                        "complement: need 0 < max_observed ({max_observed}) <= total ({total})"
                    ));
                }
            }
            ComplementCandidates::ObservedOnly { max_observed } => {
                if max_observed == 0 {
                    return Err("complement: max_observed must be positive".into());
                }
            }
        }
        Ok(())
    }

    /// Returns a copy with every out-of-range knob clamped to its
    /// nearest legal value — the sanitizing counterpart of
    /// [`NmcdrConfig::validate`], for construction paths that must not
    /// panic deep inside a run.
    pub fn clamped(&self) -> Self {
        let mut c = self.clone();
        c.dim = c.dim.max(1);
        c.match_neighbors = c.match_neighbors.max(1);
        c.hge_layers = c.hge_layers.max(1);
        c.matching_layers = c.matching_layers.max(1);
        c.complement = match c.complement {
            ComplementCandidates::ObservedPlusSampled {
                total,
                max_observed,
            } => {
                let total = total.max(1);
                ComplementCandidates::ObservedPlusSampled {
                    total,
                    max_observed: max_observed.min(total),
                }
            }
            ComplementCandidates::ObservedOnly { max_observed } => {
                ComplementCandidates::ObservedOnly {
                    max_observed: max_observed.max(1),
                }
            }
        };
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        NmcdrConfig::default().validate().unwrap();
    }

    #[test]
    fn clamped_always_validates() {
        let mut c = NmcdrConfig {
            dim: 0,
            match_neighbors: 0,
            hge_layers: 0,
            matching_layers: 0,
            complement: ComplementCandidates::ObservedPlusSampled {
                total: 0,
                max_observed: 9,
            },
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.clamped().validate().expect("clamped config is legal");
        c.complement = ComplementCandidates::ObservedOnly { max_observed: 0 };
        c.clamped().validate().expect("clamped config is legal");
        // an already-valid config passes through unchanged
        let d = NmcdrConfig::default();
        assert_eq!(format!("{:?}", d.clamped()), format!("{d:?}"));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = NmcdrConfig::default();
        c.dim = 0;
        assert!(c.validate().is_err());

        let mut c = NmcdrConfig::default();
        c.complement = ComplementCandidates::ObservedPlusSampled {
            total: 4,
            max_observed: 10,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn ablation_default_is_full_model() {
        let a = Ablation::none();
        assert!(!a.no_intra_matching && !a.no_inter_matching);
        assert!(!a.no_complementing && !a.no_companion && !a.gate_off);
    }
}
