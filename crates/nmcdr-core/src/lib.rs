//! # nmcdr-core
//!
//! NMCDR — *Neural Node Matching for Multi-Target Cross Domain
//! Recommendation* (ICDE 2023) — the paper's primary contribution,
//! implemented end-to-end on the workspace substrate.
//!
//! ## Pipeline (paper §II, Fig. 2)
//!
//! ```text
//!  E^Z, E^Z̄           embeddings (Eq. 1)
//!    │ heterogeneous graph encoder (Eq. 2–4)          → u_g1
//!    │ intra node matching: head/tail bridges + gate  → u_g2   (Eq. 5–11)
//!    │ inter node matching: self/other bridges + gate → u_g3   (Eq. 12–17)
//!    │ intra node complementing: virtual links        → u_g4   (Eq. 18–19)
//!    └ prediction MLP on [u_g4 ‖ v]                   → ŷ      (Eq. 20)
//! ```
//!
//! Companion BCE objectives are attached to `(u, u_g1, u_g2, u_g3)`
//! through the *shared* prediction layer (Eq. 21–24).
//!
//! The [`NmcdrConfig::ablation`] switches reproduce Table IX
//! (`w/o-Igm`, `w/o-Cgm`, `w/o-Inc`, `w/o-Sup`) plus two extra design
//! ablations DESIGN.md calls out (gate-off, observed-only
//! complementing).

mod config;
mod model;
pub mod stability;

pub use config::{Ablation, ComplementCandidates, NmcdrConfig};
pub use model::{NmcdrModel, StageEmbeddings};
