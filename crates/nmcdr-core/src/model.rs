//! The NMCDR model.

use crate::{ComplementCandidates, NmcdrConfig};
use nm_autograd::{Tape, Var};
use nm_graph::{sampling, Csr};
use nm_models::{CdrModel, CdrTask, Domain};
use nm_nn::{Activation, Embedding, GateFusion, Linear, Mlp, Module, Param};
use nm_obs::trace;
use nm_tensor::rng::{Rng, SeedableRng, StdRng};
use nm_tensor::{Tensor, TensorRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Sampled/stateful structures for one domain, rebuilt per epoch when
/// `resample_each_epoch` is set.
struct DomainBridges {
    /// Intra head bridge (Eq. 8, `1/|N^head|` weights) + transpose.
    head: (Rc<Csr>, Rc<Csr>),
    /// Intra tail bridge.
    tail: (Rc<Csr>, Rc<Csr>),
    /// Inter `other` bridge Z ← Z̄ (Eq. 13) + transpose.
    other: (Rc<Csr>, Rc<Csr>),
    /// Complement candidate item ids, flattened `n_users * C`.
    comp_idx: Rc<Vec<u32>>,
}

/// Frozen per-stage user embeddings (Fig. 5's visualization input).
pub struct StageEmbeddings {
    /// `[domain A, domain B]` tables after the graph encoder.
    pub g1: [Tensor; 2],
    /// After intra node matching.
    pub g2: [Tensor; 2],
    /// After inter node matching.
    pub g3: [Tensor; 2],
    /// After intra node complementing.
    pub g4: [Tensor; 2],
}

struct EvalCache {
    user: [Tensor; 2],
    item: [Tensor; 2],
}

/// All intermediate user tables of one full propagation.
struct Stages {
    g0: [Var; 2],
    g1: [Var; 2],
    g2: [Var; 2],
    g3: [Var; 2],
    g4: [Var; 2],
    items: [Var; 2],
}

/// NMCDR (paper §II). See the crate docs for the pipeline map.
pub struct NmcdrModel {
    task: Rc<CdrTask>,
    cfg: NmcdrConfig,
    user_emb: [Embedding; 2],
    item_emb: [Embedding; 2],
    /// Heterogeneous-encoder transforms, one per layer per domain.
    hge: [Vec<Linear>; 2],
    w_head: [Linear; 2],
    w_tail: [Linear; 2],
    gate_intra: [GateFusion; 2],
    w_self: [Linear; 2],
    w_other: [Linear; 2],
    /// Eq. 15 mixing matrices (bias-free).
    w_cross: [Linear; 2],
    gate_inter: [GateFusion; 2],
    w_ref: [Linear; 2],
    /// Shared prediction MLP per domain (companions reuse it, Eq. 21).
    pred: [Mlp; 2],
    /// Self-bridge gather maps (aligned foreign user, sentinel 0) and
    /// overlap masks.
    self_gather: [Rc<Vec<u32>>; 2],
    self_mask: [Tensor; 2],
    bridges: RefCell<[DomainBridges; 2]>,
    cache: RefCell<Option<EvalCache>>,
    epoch_built: RefCell<Option<usize>>,
}

fn build_self_maps(n: usize, overlap: &[Option<u32>]) -> (Rc<Vec<u32>>, Tensor) {
    let mut map = Vec::with_capacity(n);
    let mut mask = Tensor::zeros(n, 1);
    for (u, o) in overlap.iter().enumerate().take(n) {
        match *o {
            Some(x) => {
                map.push(x);
                mask.set(u, 0, 1.0);
            }
            None => map.push(0),
        }
    }
    (Rc::new(map), mask)
}

/// One domain's parameter stack, created in a fixed order so the
/// shared RNG consumption (and therefore every initial weight) is
/// identical to older checkpoints.
struct DomainParams {
    user_emb: Embedding,
    item_emb: Embedding,
    hge: Vec<Linear>,
    w_head: Linear,
    w_tail: Linear,
    gate_intra: GateFusion,
    w_self: Linear,
    w_other: Linear,
    w_cross: Linear,
    gate_inter: GateFusion,
    w_ref: Linear,
    pred: Mlp,
}

impl DomainParams {
    fn new(
        n: &str,
        n_users: usize,
        n_items: usize,
        cfg: &NmcdrConfig,
        rng: &mut TensorRng,
    ) -> Self {
        let d = cfg.dim;
        Self {
            user_emb: Embedding::new(&format!("nmcdr.{n}.users"), n_users, d, 0.1, rng),
            item_emb: Embedding::new(&format!("nmcdr.{n}.items"), n_items, d, 0.1, rng),
            hge: (0..cfg.hge_layers)
                .map(|l| Linear::new(&format!("nmcdr.{n}.hge{l}"), d, d, rng))
                .collect(),
            w_head: Linear::new(&format!("nmcdr.{n}.w_head"), d, d, rng),
            w_tail: Linear::new(&format!("nmcdr.{n}.w_tail"), d, d, rng),
            gate_intra: GateFusion::new(&format!("nmcdr.{n}.gate_intra"), d, rng),
            w_self: Linear::new(&format!("nmcdr.{n}.w_self"), d, d, rng),
            w_other: Linear::new(&format!("nmcdr.{n}.w_other"), d, d, rng),
            w_cross: Linear::new_no_bias(&format!("nmcdr.{n}.w_cross"), d, d, rng),
            gate_inter: GateFusion::new(&format!("nmcdr.{n}.gate_inter"), d, rng),
            w_ref: Linear::new(&format!("nmcdr.{n}.w_ref"), d, d, rng),
            pred: Mlp::new(
                &format!("nmcdr.{n}.pred"),
                &[2 * d, d, 1],
                Activation::Relu,
                rng,
            ),
        }
    }
}

impl NmcdrModel {
    pub fn new(task: Rc<CdrTask>, cfg: NmcdrConfig) -> Self {
        // out-of-range knobs are clamped to their nearest legal value
        // instead of panicking deep inside a run
        let cfg = cfg.clamped();
        let mut rng = TensorRng::seed_from(cfg.seed);
        let n_users = [task.split_a.n_users, task.split_b.n_users];
        let n_items = [task.split_a.n_items, task.split_b.n_items];
        // Domain A's full stack is created before domain B's — the same
        // RNG order as always.
        let da = DomainParams::new("a", n_users[0], n_items[0], &cfg, &mut rng);
        let db = DomainParams::new("b", n_users[1], n_items[1], &cfg, &mut rng);
        let (sg_a, sm_a) = build_self_maps(n_users[0], &task.overlap_a_to_b);
        let (sg_b, sm_b) = build_self_maps(n_users[1], &task.overlap_b_to_a);
        let bridges = RefCell::new(Self::build_bridges(&task, &cfg, 0));
        Self {
            user_emb: [da.user_emb, db.user_emb],
            item_emb: [da.item_emb, db.item_emb],
            hge: [da.hge, db.hge],
            w_head: [da.w_head, db.w_head],
            w_tail: [da.w_tail, db.w_tail],
            gate_intra: [da.gate_intra, db.gate_intra],
            w_self: [da.w_self, db.w_self],
            w_other: [da.w_other, db.w_other],
            w_cross: [da.w_cross, db.w_cross],
            gate_inter: [da.gate_inter, db.gate_inter],
            w_ref: [da.w_ref, db.w_ref],
            pred: [da.pred, db.pred],
            self_gather: [sg_a, sg_b],
            self_mask: [sm_a, sm_b],
            bridges,
            cache: RefCell::new(None),
            epoch_built: RefCell::new(Some(0)),
            task,
            cfg,
        }
    }

    pub fn config(&self) -> &NmcdrConfig {
        &self.cfg
    }

    /// Weight of heterogeneous-encoder layer `l` of domain `z`
    /// (stability analysis, §II-H).
    pub fn hge_weight(&self, z: usize, l: usize) -> nm_tensor::Tensor {
        self.hge[z][l].weight().value()
    }

    /// The head-bridge matching transform `W_head` of domain `z`.
    pub fn head_weight(&self, z: usize) -> nm_tensor::Tensor {
        self.w_head[z].weight().value()
    }

    /// The tail-bridge matching transform `W_tail` of domain `z`.
    pub fn tail_weight(&self, z: usize) -> nm_tensor::Tensor {
        self.w_tail[z].weight().value()
    }

    /// First prediction-MLP weight of domain `z`.
    pub fn pred_first_weight(&self, z: usize) -> nm_tensor::Tensor {
        self.pred[z].layer(0).weight().value()
    }

    fn build_bridges(task: &CdrTask, cfg: &NmcdrConfig, epoch: usize) -> [DomainBridges; 2] {
        let seed = cfg.seed ^ ((epoch as u64) << 17);
        let mk = |domain: Domain| -> DomainBridges {
            let (partition, split, foreign_pool, n_foreign) = match domain {
                Domain::A => (
                    &task.partition_a,
                    &task.split_a,
                    &task.non_overlap_b,
                    task.split_b.n_users,
                ),
                Domain::B => (
                    &task.partition_b,
                    &task.split_b,
                    &task.non_overlap_a,
                    task.split_a.n_users,
                ),
            };
            let z = domain.index() as u64;
            let intra = sampling::build_intra(partition, cfg.match_neighbors, seed ^ (z + 1));
            let overlap_map = match domain {
                Domain::A => &task.overlap_a_to_b,
                Domain::B => &task.overlap_b_to_a,
            };
            let inter = sampling::build_inter(
                split.n_users,
                n_foreign,
                overlap_map,
                foreign_pool,
                cfg.match_neighbors,
                seed ^ (z + 11),
            );
            let comp_idx =
                Self::build_complement_candidates(split, &cfg.complement, seed ^ (z + 21));
            let rc = |c: Csr| {
                let t = c.transpose();
                (Rc::new(c), Rc::new(t))
            };
            DomainBridges {
                head: rc(intra.head_bridge),
                tail: rc(intra.tail_bridge),
                other: rc(inter.other_bridge),
                comp_idx: Rc::new(comp_idx),
            }
        };
        [mk(Domain::A), mk(Domain::B)]
    }

    /// Builds the flattened `n_users * C` complement candidate list.
    fn build_complement_candidates(
        split: &nm_data::SplitDomain,
        cc: &ComplementCandidates,
        seed: u64,
    ) -> Vec<u32> {
        let by_user = split.train_by_user();
        let n_items = split.n_items;
        let mut rng = StdRng::seed_from_u64(seed);
        let (total, max_obs) = match *cc {
            ComplementCandidates::ObservedPlusSampled {
                total,
                max_observed,
            } => (total, max_observed),
            ComplementCandidates::ObservedOnly { max_observed } => (max_observed, max_observed),
        };
        let sample_missing = matches!(cc, ComplementCandidates::ObservedPlusSampled { .. });
        let mut out = Vec::with_capacity(split.n_users * total);
        for items in &by_user {
            let mut cands: Vec<u32> = items.iter().take(max_obs).copied().collect();
            if cands.is_empty() {
                // isolated user: seed with a random item so softmax is defined
                cands.push(rng.gen_range(0..n_items) as u32);
            }
            if sample_missing {
                let known: std::collections::HashSet<u32> = items.iter().copied().collect();
                let mut guard = 0;
                while cands.len() < total && guard < total * 30 {
                    guard += 1;
                    let j = rng.gen_range(0..n_items) as u32;
                    if !known.contains(&j) && !cands.contains(&j) {
                        cands.push(j);
                    }
                }
            }
            // pad cyclically to the fixed width C
            let mut k = 0;
            while cands.len() < total {
                cands.push(cands[k % cands.len().max(1)]);
                k += 1;
            }
            out.extend_from_slice(&cands);
        }
        out
    }

    /// Heterogeneous graph encoder (Eq. 2–4): per layer,
    /// `U' = ReLU(U W + Â_ui (V W))`, `V' = ReLU(V W + Â_iu (U W))`.
    fn hge_forward(&self, tape: &mut Tape, z: usize, mut u: Var, mut v: Var) -> (Var, Var) {
        let (ui, ui_t, iu, iu_t) = match z {
            0 => (
                &self.task.ui_norm_a,
                &self.task.ui_norm_a_t,
                &self.task.iu_norm_a,
                &self.task.iu_norm_a_t,
            ),
            _ => (
                &self.task.ui_norm_b,
                &self.task.ui_norm_b_t,
                &self.task.iu_norm_b,
                &self.task.iu_norm_b_t,
            ),
        };
        for layer in &self.hge[z] {
            let uw = layer.forward(tape, u);
            let vw = layer.forward(tape, v);
            let u_agg = tape.spmm(Rc::clone(ui), Rc::clone(ui_t), vw);
            let u_sum = tape.add(uw, u_agg);
            let u_next = tape.relu(u_sum);
            let v_agg = tape.spmm(Rc::clone(iu), Rc::clone(iu_t), uw);
            let v_sum = tape.add(vw, v_agg);
            let v_next = tape.relu(v_sum);
            u = u_next;
            v = v_next;
        }
        (u, v)
    }

    /// Intra node matching (Eq. 5–11).
    fn intra_forward(&self, tape: &mut Tape, z: usize, x: Var) -> Var {
        let bridges = self.bridges.borrow();
        let b = &bridges[z];
        let th = self.w_head[z].forward(tape, x);
        let mh = tape.spmm(Rc::clone(&b.head.0), Rc::clone(&b.head.1), th);
        let uh = tape.relu(mh);
        let tt = self.w_tail[z].forward(tape, x);
        let mt = tape.spmm(Rc::clone(&b.tail.0), Rc::clone(&b.tail.1), tt);
        let ut = tape.relu(mt);
        let fused = if self.cfg.ablation.gate_off {
            let s = tape.add(uh, ut);
            tape.tanh(s)
        } else {
            self.gate_intra[z].forward(tape, uh, ut)
        };
        tape.add(fused, x)
    }

    /// Inter node matching (Eq. 12–17). `x_own`/`x_other` are the g2
    /// tables of this and the other domain.
    fn inter_forward(&self, tape: &mut Tape, z: usize, x_own: Var, x_other: Var) -> Var {
        let bridges = self.bridges.borrow();
        let b = &bridges[z];
        // self bridge (overlapped users only, masked)
        let t_self = self.w_self[z].forward(tape, x_other);
        let gathered = tape.gather_rows(t_self, Rc::clone(&self.self_gather[z]));
        let act = tape.relu(gathered);
        let mask = tape.constant(self.self_mask[z].clone());
        let u_self = tape.mul(act, mask);
        // other bridge (sampled non-overlapped foreign users)
        let t_other = self.w_other[z].forward(tape, x_other);
        let m_other = tape.spmm(Rc::clone(&b.other.0), Rc::clone(&b.other.1), t_other);
        let u_other = tape.relu(m_other);
        // Eq. 15: u* = u_g2 W_cross^Z + u_self (1 - W_cross^Z̄)
        let t1 = self.w_cross[z].forward(tape, x_own);
        let t2w = self.w_cross[1 - z].forward(tape, u_self);
        let t2 = tape.sub(u_self, t2w);
        let g3_star = tape.add(t1, t2);
        // Eq. 16 gate with the non-overlapped message
        let gated = if self.cfg.ablation.gate_off {
            let s = tape.add(g3_star, u_other);
            tape.tanh(s)
        } else {
            self.gate_inter[z].forward(tape, g3_star, u_other)
        };
        // Eq. 17 residual
        tape.add(gated, x_own)
    }

    /// Intra node complementing (Eq. 18–19): virtual-link attention over
    /// the candidate items, `inc_layers` passes.
    fn complement_forward(&self, tape: &mut Tape, z: usize, mut x: Var, v0: Var) -> Var {
        let bridges = self.bridges.borrow();
        let idx = Rc::clone(&bridges[z].comp_idx);
        let n = tape.value(x).rows();
        let c = idx.len() / n;
        for _ in 0..self.cfg.inc_layers {
            let cand = tape.gather_rows(v0, Rc::clone(&idx)); // (N*C) x D
            let urep = tape.repeat_rows(x, c);
            let scores = tape.rowwise_dot(urep, cand); // (N*C) x 1
            let sc = tape.reshape(scores, n, c);
            let alpha = tape.softmax_rows(sc);
            let aw = tape.reshape(alpha, n * c, 1);
            let weighted = tape.mul(cand, aw);
            let agg = tape.segment_sum_rows(weighted, c); // N x D
            let transformed = self.w_ref[z].forward(tape, agg);
            x = tape.add(x, transformed);
        }
        x
    }

    /// Full propagation producing every stage's user tables.
    fn propagate(&self, tape: &mut Tape) -> Stages {
        let ab = &self.cfg.ablation;
        let u0: [Var; 2] = [self.user_emb[0].full(tape), self.user_emb[1].full(tape)];
        let v0: [Var; 2] = [self.item_emb[0].full(tape), self.item_emb[1].full(tape)];
        let mut g1 = [u0[0], u0[1]];
        {
            let _sp = trace::span("stage.encoder");
            for z in 0..2 {
                let (u, _) = self.hge_forward(tape, z, u0[z], v0[z]);
                g1[z] = u;
            }
        }
        // Intra-to-inter matching, `matching_layers` recurrent passes
        // (paper §III-A-4 uses 3 aggregation layers in this module).
        // g2 records the state after the LAST intra pass, g3 after the
        // last inter pass — the stages the companion objectives attach to.
        let mut g2 = g1;
        let mut g3 = g1;
        let mut cur = g1;
        for _ in 0..self.cfg.matching_layers {
            if !ab.no_intra_matching {
                let _sp = trace::span("stage.intra_matching");
                for (z, c) in cur.iter_mut().enumerate() {
                    *c = self.intra_forward(tape, z, *c);
                }
            }
            g2 = cur;
            if !ab.no_inter_matching {
                let _sp = trace::span("stage.inter_matching");
                let n0 = self.inter_forward(tape, 0, cur[0], cur[1]);
                let n1 = self.inter_forward(tape, 1, cur[1], cur[0]);
                cur = [n0, n1];
            }
            g3 = cur;
        }
        let mut g4 = g3;
        if !ab.no_complementing {
            let _sp = trace::span("stage.complementing");
            for z in 0..2 {
                g4[z] = self.complement_forward(tape, z, g3[z], v0[z]);
            }
        }
        Stages {
            g0: u0,
            g1,
            g2,
            g3,
            g4,
            items: v0,
        }
    }

    /// Shared prediction layer (Eq. 20) on gathered pairs.
    fn predict(
        &self,
        tape: &mut Tape,
        z: usize,
        user_table: Var,
        item_table: Var,
        users: Rc<Vec<u32>>,
        items: Rc<Vec<u32>>,
    ) -> Var {
        let u = tape.gather_rows(user_table, users);
        let v = tape.gather_rows(item_table, items);
        let x = tape.concat_cols(u, v);
        self.pred[z].forward(tape, x)
    }

    /// Statically verifies the matching-pipeline shape invariants of
    /// Eq. 5–19 on a fresh probe tape: every user stage must keep shape
    /// `(n_users_z, dim)` — the gate (Eq. 8/16) and residual (Eq. 11/17)
    /// structure of intra/inter matching is only well-formed when a
    /// stage's input and output agree — and the complementing attention
    /// (Eq. 18–19) must return to the same shape after its
    /// repeat/softmax/segment-sum round trip. Item tables must stay
    /// `(n_items_z, dim)`. Returns one message per violated invariant;
    /// `nmcdr check` surfaces them as diagnostics.
    pub fn check_stage_invariants(&self) -> Vec<String> {
        let mut tape = Tape::new();
        let s = self.propagate(&mut tape);
        let d = self.cfg.dim;
        let n_users = [self.task.split_a.n_users, self.task.split_b.n_users];
        let n_items = [self.task.split_a.n_items, self.task.split_b.n_items];
        let mut out = Vec::new();
        let stages: [(&str, &[Var; 2]); 5] = [
            ("g0 embeddings (Eq. 2)", &s.g0),
            ("g1 encoder (Eq. 3-4)", &s.g1),
            ("g2 intra matching (Eq. 5-11)", &s.g2),
            ("g3 inter matching (Eq. 12-17)", &s.g3),
            ("g4 complementing attention (Eq. 18-19)", &s.g4),
        ];
        for (name, vs) in stages {
            for (z, &nu) in n_users.iter().enumerate() {
                let got = tape.value(vs[z]).shape();
                let want = (nu, d);
                if got != want {
                    out.push(format!(
                        "{name} domain {z}: shape {}x{}, invariant requires {}x{}",
                        got.0, got.1, want.0, want.1
                    ));
                }
            }
        }
        for (z, &ni) in n_items.iter().enumerate() {
            let got = tape.value(s.items[z]).shape();
            let want = (ni, d);
            if got != want {
                out.push(format!(
                    "item table domain {z}: shape {}x{}, invariant requires {}x{}",
                    got.0, got.1, want.0, want.1
                ));
            }
        }
        out
    }

    /// Per-stage user embeddings with gradients detached (Fig. 5).
    pub fn stage_embeddings(&self) -> StageEmbeddings {
        let mut tape = Tape::new();
        let s = self.propagate(&mut tape);
        let take = |v: &[Var; 2]| [tape.value(v[0]).clone(), tape.value(v[1]).clone()];
        StageEmbeddings {
            g1: take(&s.g1),
            g2: take(&s.g2),
            g3: take(&s.g3),
            g4: take(&s.g4),
        }
    }
}

impl Module for NmcdrModel {
    fn params(&self) -> Vec<&Param> {
        let mut p = Vec::new();
        for z in 0..2 {
            p.extend(self.user_emb[z].params());
            p.extend(self.item_emb[z].params());
            for l in &self.hge[z] {
                p.extend(l.params());
            }
            p.extend(self.w_head[z].params());
            p.extend(self.w_tail[z].params());
            p.extend(self.gate_intra[z].params());
            p.extend(self.w_self[z].params());
            p.extend(self.w_other[z].params());
            p.extend(self.w_cross[z].params());
            p.extend(self.gate_inter[z].params());
            p.extend(self.w_ref[z].params());
            p.extend(self.pred[z].params());
        }
        p
    }
}

impl NmcdrModel {
    /// Recomputes the frozen eval tables (`&self` thanks to the
    /// interior cache cell), so any reader can rebuild a missing cache
    /// instead of panicking on it.
    fn build_eval_cache(&self) {
        let mut tape = Tape::new();
        let s = self.propagate(&mut tape);
        *self.cache.borrow_mut() = Some(EvalCache {
            user: [tape.value(s.g4[0]).clone(), tape.value(s.g4[1]).clone()],
            item: [
                tape.value(s.items[0]).clone(),
                tape.value(s.items[1]).clone(),
            ],
        });
    }
}

impl CdrModel for NmcdrModel {
    fn name(&self) -> &'static str {
        "NMCDR"
    }

    fn task(&self) -> &Rc<CdrTask> {
        &self.task
    }

    fn begin_epoch(&mut self, epoch: usize) {
        if self.cfg.resample_each_epoch && *self.epoch_built.borrow() != Some(epoch) {
            *self.bridges.borrow_mut() = Self::build_bridges(&self.task, &self.cfg, epoch);
            *self.epoch_built.borrow_mut() = Some(epoch);
        }
    }

    /// Eq. 22–24: companion BCE at every stage through the shared
    /// prediction layer, plus the final prediction loss, both domains.
    fn loss(
        &self,
        tape: &mut Tape,
        batch_a: &nm_data::batch::Batch,
        batch_b: &nm_data::batch::Batch,
        _step: u64,
    ) -> Var {
        let w = &self.cfg.loss_weights;
        let stages = self.propagate(tape);
        let mut total: Option<Var> = None;
        let add = |tape: &mut Tape, total: &mut Option<Var>, term: Var, weight: f32| {
            if weight == 0.0 {
                return;
            }
            let t = if weight == 1.0 {
                term
            } else {
                tape.scale(term, weight)
            };
            *total = Some(match *total {
                Some(acc) => tape.add(acc, t),
                None => t,
            });
        };
        for (z, batch) in [(0usize, batch_a), (1usize, batch_b)] {
            let users = Rc::new(batch.users.clone());
            let items = Rc::new(batch.items.clone());
            let targets = Rc::new(Tensor::col(batch.labels.clone()));
            let dom = if z == 0 { "a" } else { "b" };
            let co_weight = if z == 0 { w[4] } else { w[5] };
            if !self.cfg.ablation.no_companion && co_weight != 0.0 {
                // Companion objectives Eq. 21–24 attach to stages
                // g0 (embeddings) / g1 (encoder) / g2 (intra) / g3
                // (inter); each component is recorded *unweighted* so
                // telemetry shows which stage's objective moves.
                for (stage_table, wi, stage_name) in [
                    (stages.g0[z], w[0], "embed"),
                    (stages.g1[z], w[1], "encoder"),
                    (stages.g2[z], w[2], "intra"),
                    (stages.g3[z], w[3], "inter"),
                ] {
                    if wi == 0.0 {
                        continue;
                    }
                    let logits = self.predict(
                        tape,
                        z,
                        stage_table,
                        stages.items[z],
                        Rc::clone(&users),
                        Rc::clone(&items),
                    );
                    let l = tape.bce_with_logits_mean(logits, Rc::clone(&targets));
                    if trace::enabled() {
                        trace::value(
                            &format!("loss.companion.{stage_name}.{dom}"),
                            tape.value(l).item() as f64,
                        );
                    }
                    add(tape, &mut total, l, wi * co_weight);
                }
            }
            let cls_weight = if z == 0 { w[6] } else { w[7] };
            let logits = self.predict(
                tape,
                z,
                stages.g4[z],
                stages.items[z],
                Rc::clone(&users),
                Rc::clone(&items),
            );
            let l = tape.bce_with_logits_mean(logits, targets);
            if trace::enabled() {
                trace::value(&format!("loss.final.{dom}"), tape.value(l).item() as f64);
            }
            add(tape, &mut total, l, cls_weight);
        }
        // every loss weight zero: a constant zero loss (and zero
        // gradients) rather than a panic
        total.unwrap_or_else(|| tape.constant(Tensor::zeros(1, 1)))
    }

    fn forward_logits(&self, tape: &mut Tape, domain: Domain, users: &[u32], items: &[u32]) -> Var {
        let z = domain.index();
        let stages = self.propagate(tape);
        self.predict(
            tape,
            z,
            stages.g4[z],
            stages.items[z],
            Rc::new(users.to_vec()),
            Rc::new(items.to_vec()),
        )
    }

    fn prepare_eval(&mut self) {
        self.build_eval_cache();
    }

    fn eval_scores(&self, domain: Domain, users: &[u32], items: &[u32]) -> Vec<f32> {
        let z = domain.index();
        if self.cache.borrow().is_none() {
            self.build_eval_cache();
        }
        let cache = self.cache.borrow();
        let Some(c) = cache.as_ref() else {
            // unreachable after build_eval_cache; degrade to zeros
            return vec![0.0; users.len().min(items.len())];
        };
        let mut tape = Tape::new();
        let u = tape.constant(c.user[z].gather_rows(users));
        let v = tape.constant(c.item[z].gather_rows(items));
        let x = tape.concat_cols(u, v);
        let logits = self.pred[z].forward(&mut tape, x);
        tape.value(logits).data().to_vec()
    }
}

impl nm_serve::FrozenModel for NmcdrModel {
    /// Runs the full NMCDR propagation once and freezes the g4 user
    /// tables, item tables, and the shared prediction MLPs — exactly
    /// the state `eval_scores` consumes, so the serving engine scores
    /// bit-for-bit identically to offline evaluation.
    fn export_frozen(&mut self) -> nm_serve::Snapshot {
        self.prepare_eval();
        let cache = self.cache.borrow();
        let Some(c) = cache.as_ref() else {
            // unreachable: prepare_eval just populated the cache; a
            // minimal consistent snapshot beats a panic in an export
            let empty = || nm_serve::DomainSnapshot {
                users: Tensor::zeros(1, 1),
                items: Tensor::zeros(1, 1),
                head: nm_serve::HeadKind::Dot,
            };
            return nm_serve::Snapshot {
                model: "NMCDR".into(),
                domains: [empty(), empty()],
            };
        };
        let mk = |z: usize| nm_serve::DomainSnapshot {
            users: c.user[z].clone(),
            items: c.item[z].clone(),
            head: nm_serve::HeadKind::Mlp(nm_serve::MlpHead::from_mlp(&self.pred[z])),
        };
        nm_serve::Snapshot {
            model: "NMCDR".into(),
            domains: [mk(0), mk(1)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_data::{generate::generate, Scenario};
    use nm_models::task::TaskConfig;
    use nm_models::train::{train_joint, TrainConfig};

    fn tiny_task(ratio: f64) -> Rc<CdrTask> {
        let mut cfg = Scenario::ClothSport.config(0.002);
        cfg.n_users_a = 90;
        cfg.n_users_b = 95;
        cfg.n_items_a = 45;
        cfg.n_items_b = 50;
        cfg.n_overlap = 35;
        let data = generate(&cfg).with_overlap_ratio(ratio, 3);
        let mut t = TaskConfig::default();
        t.eval_negatives = 40;
        CdrTask::build(data, t)
    }

    fn small_cfg() -> NmcdrConfig {
        NmcdrConfig {
            dim: 8,
            match_neighbors: 16,
            ..Default::default()
        }
    }

    #[test]
    fn forward_shapes_all_stages() {
        let m = NmcdrModel::new(tiny_task(0.5), small_cfg());
        let mut tape = Tape::new();
        let s = m.propagate(&mut tape);
        for z in 0..2 {
            let n = m.task.n_users(if z == 0 { Domain::A } else { Domain::B });
            for v in [s.g0[z], s.g1[z], s.g2[z], s.g3[z], s.g4[z]] {
                assert_eq!(tape.value(v).shape(), (n, 8));
                assert!(tape.value(v).all_finite());
            }
        }
    }

    #[test]
    fn loss_is_finite_and_backprops_to_all_param_groups() {
        let m = NmcdrModel::new(tiny_task(0.5), small_cfg());
        let batch = nm_data::batch::Batch {
            users: vec![0, 1, 2, 3],
            items: vec![0, 1, 2, 3],
            labels: vec![1.0, 0.0, 1.0, 0.0],
        };
        let mut tape = Tape::new();
        let l = m.loss(&mut tape, &batch, &batch, 0);
        assert!(tape.value(l).item().is_finite());
        tape.backward(l);
        nm_nn::absorb_all(&m, &tape);
        // every named component must receive gradient signal
        for needle in [
            "users",
            "items",
            "hge0",
            "w_head",
            "w_tail",
            "gate_intra",
            "w_self",
            "w_other",
            "w_cross",
            "gate_inter",
            "w_ref",
            "pred",
        ] {
            let got: f32 = m
                .params()
                .iter()
                .filter(|p| p.name().contains(needle))
                .map(|p| p.grad_norm_sq())
                .sum();
            assert!(got > 0.0, "no gradient reached {needle}");
        }
    }

    #[test]
    fn ablations_change_node_counts() {
        let task = tiny_task(0.5);
        let full = NmcdrModel::new(task.clone(), small_cfg());
        let mut no_igm_cfg = small_cfg();
        no_igm_cfg.ablation.no_intra_matching = true;
        let no_igm = NmcdrModel::new(task.clone(), no_igm_cfg);
        let mut t1 = Tape::new();
        let _ = full.propagate(&mut t1);
        let mut t2 = Tape::new();
        let _ = no_igm.propagate(&mut t2);
        assert!(t2.len() < t1.len(), "ablation should shrink the graph");
    }

    #[test]
    fn no_companion_reduces_loss_terms() {
        let task = tiny_task(0.5);
        let batch = nm_data::batch::Batch {
            users: vec![0, 1],
            items: vec![0, 1],
            labels: vec![1.0, 0.0],
        };
        let full = NmcdrModel::new(task.clone(), small_cfg());
        let mut cfg = small_cfg();
        cfg.ablation.no_companion = true;
        let wo = NmcdrModel::new(task, cfg);
        let mut t1 = Tape::new();
        let l1 = full.loss(&mut t1, &batch, &batch, 0);
        let mut t2 = Tape::new();
        let l2 = wo.loss(&mut t2, &batch, &batch, 0);
        // the companioned loss has more BCE terms, so (with equal weights)
        // its value is strictly larger at init
        assert!(t1.value(l1).item() > t2.value(l2).item());
    }

    #[test]
    fn zero_overlap_still_trains() {
        let mut m = NmcdrModel::new(tiny_task(0.0), small_cfg());
        let stats = train_joint(
            &mut m,
            &TrainConfig {
                epochs: 2,
                lr: 5e-3,
                batch_size: 256,
                ..Default::default()
            },
        )
        .expect("training");
        assert!(stats.logs.iter().all(|l| l.mean_loss.is_finite()));
        assert!(stats.final_a.n_users > 0);
    }

    #[test]
    fn trains_above_chance() {
        let mut m = NmcdrModel::new(tiny_task(0.9), small_cfg());
        let stats = train_joint(
            &mut m,
            &TrainConfig {
                epochs: 5,
                lr: 5e-3,
                batch_size: 512,
                ..Default::default()
            },
        )
        .expect("training");
        assert!(stats.final_a.auc > 0.52, "AUC {}", stats.final_a.auc);
        assert!(stats.final_b.auc > 0.52, "AUC {}", stats.final_b.auc);
    }

    #[test]
    fn stage_embeddings_have_expected_shapes() {
        let m = NmcdrModel::new(tiny_task(0.5), small_cfg());
        let s = m.stage_embeddings();
        assert_eq!(s.g1[0].shape(), (90, 8));
        assert_eq!(s.g4[1].shape(), (95, 8));
    }

    #[test]
    fn eval_scores_match_forward_logits() {
        let mut m = NmcdrModel::new(tiny_task(0.5), small_cfg());
        let users = [0u32, 4];
        let items = [2u32, 3];
        let mut tape = Tape::new();
        let l = m.forward_logits(&mut tape, Domain::A, &users, &items);
        let fwd = tape.value(l).data().to_vec();
        m.prepare_eval();
        let ev = m.eval_scores(Domain::A, &users, &items);
        for (a, b) in fwd.iter().zip(&ev) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn complement_candidates_width_is_constant() {
        let task = tiny_task(0.5);
        let idx = NmcdrModel::build_complement_candidates(
            &task.split_a,
            &ComplementCandidates::ObservedPlusSampled {
                total: 12,
                max_observed: 6,
            },
            7,
        );
        assert_eq!(idx.len(), task.split_a.n_users * 12);
        assert!(idx.iter().all(|&i| (i as usize) < task.split_a.n_items));
    }

    #[test]
    fn resampling_changes_bridges_between_epochs() {
        // The head pool can be smaller than the sampling budget (then the
        // head bridge is deterministically "everyone"), so check the three
        // stochastic structures together: at least one must change.
        let mut m = NmcdrModel::new(tiny_task(0.5), small_cfg());
        let before = {
            let b = m.bridges.borrow();
            (
                b[0].head.0.as_ref().clone(),
                b[0].tail.0.as_ref().clone(),
                b[0].comp_idx.as_ref().clone(),
            )
        };
        m.begin_epoch(1);
        let b = m.bridges.borrow();
        let changed =
            *b[0].head.0 != before.0 || *b[0].tail.0 != before.1 || *b[0].comp_idx != before.2;
        assert!(changed, "no sampled structure changed across epochs");
    }
}
