//! End-to-end parity: train briefly, save an NMCK checkpoint, reload it
//! into a fresh model, export an NMSS snapshot, and assert the serving
//! engine scores **bit-for-bit identically** to the model's own offline
//! `eval_scores` path — for NMCDR and two baselines with different head
//! kinds (BPR: dot, HeroGraph: MLP).

use nm_eval::{evaluate_ranking, Scorer};
use nm_models::{BprModel, CdrModel, CdrTask, Domain, HeroGraphModel, TaskConfig};
use nm_nn::Module;
use nm_serve::{Engine, EngineConfig, FrozenModel, Snapshot};
use nm_tensor::rng::{Rng, SeedableRng, StdRng};
use nmcdr_core::{NmcdrConfig, NmcdrModel};
use std::rc::Rc;

fn tiny_task() -> Rc<CdrTask> {
    let mut cfg = nm_data::Scenario::ClothSport.config(0.002);
    cfg.n_users_a = 60;
    cfg.n_users_b = 55;
    cfg.n_items_a = 30;
    cfg.n_items_b = 28;
    cfg.n_overlap = 20;
    let data = nm_data::generate::generate(&cfg);
    let mut t = TaskConfig::default();
    t.eval_negatives = 20;
    CdrTask::build(data, t)
}

fn nmcdr_cfg() -> NmcdrConfig {
    NmcdrConfig {
        dim: 8,
        match_neighbors: 8,
        ..Default::default()
    }
}

/// Jitter the params so the round-trip is not a trivial all-init check,
/// without paying for real training epochs in a unit test.
fn perturb(params: &[&nm_nn::Param], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for p in params {
        p.update(|v, _| {
            for x in v.data_mut() {
                *x += 0.1 * (rng.gen::<f32>() - 0.5);
            }
        });
    }
}

/// The common checkpoint → fresh model → snapshot → engine pipeline.
/// `make` builds an untrained model; returns (model's own eval scores,
/// engine scores, engine) for caller-side comparison.
fn roundtrip_parity<M: CdrModel + FrozenModel + Module>(tag: &str, mut trained: M, mut fresh: M) {
    let dir = std::env::temp_dir().join(format!("nm_parity_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("model.nmck");
    let nmss = dir.join("model.nmss");

    perturb(&trained.params(), 0xFEED);
    nm_nn::checkpoint::save_to_file(&trained.params(), &ckpt).unwrap();
    nm_nn::checkpoint::load_from_file(&fresh.params(), &ckpt).unwrap();

    // snapshot through disk, like the CLI does
    fresh.export_frozen().save_to_file(&nmss).unwrap();
    let snap = Snapshot::load_from_file(&nmss).unwrap();
    let engine = Engine::new(
        snap,
        EngineConfig {
            n_workers: 3,
            shard_items: 7, // deliberately uneven shards
            ..Default::default()
        },
    )
    .expect("valid exported snapshot");

    trained.prepare_eval();
    for (z, domain) in [(0usize, Domain::A), (1usize, Domain::B)] {
        let n_items = engine.snapshot().n_items(z) as u32;
        let users: Vec<u32> = (0..6u32)
            .flat_map(|u| std::iter::repeat(u).take(4))
            .collect();
        let items: Vec<u32> = (0..users.len() as u32).map(|i| i % n_items).collect();
        let offline = trained.eval_scores(domain, &users, &items);
        let online = engine.score(z, &users, &items);
        assert_eq!(
            offline, online,
            "{tag}: domain {z} pairwise scores must be bit-identical"
        );

        // the ranking metrics agree too, scored through the Scorer trait
        let cands = match domain {
            Domain::A => &trained.task().eval_a,
            Domain::B => &trained.task().eval_b,
        };
        let offline_sum = evaluate_ranking(
            &|u: &[u32], i: &[u32]| trained.eval_scores(domain, u, i),
            cands,
            10,
        );
        let scorer = engine.scorer(z);
        let online_sum = evaluate_ranking(&scorer, cands, 10);
        assert_eq!(offline_sum, online_sum, "{tag}: domain {z} ranking summary");

        // and the engine's threaded top-K matches a brute-force ranking
        // of the engine's own scores
        let all_items: Vec<u32> = (0..n_items).collect();
        for user in [0u32, 3] {
            let scores = engine.score(z, &vec![user; all_items.len()], &all_items);
            let pairs: Vec<(u32, f32)> = all_items.iter().copied().zip(scores).collect();
            let want = nm_eval::top_k(&pairs, 10);
            let (_, got) = engine.topk(z, user, 10);
            assert_eq!(*got, want, "{tag}: topk for user {user} domain {z}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn nmcdr_checkpoint_snapshot_engine_parity() {
    let task = tiny_task();
    roundtrip_parity(
        "nmcdr",
        NmcdrModel::new(task.clone(), nmcdr_cfg()),
        NmcdrModel::new(task, nmcdr_cfg()),
    );
}

#[test]
fn bpr_checkpoint_snapshot_engine_parity() {
    let task = tiny_task();
    roundtrip_parity(
        "bpr",
        BprModel::new(task.clone(), 8, 3),
        BprModel::new(task, 8, 3),
    );
}

#[test]
fn herograph_checkpoint_snapshot_engine_parity() {
    let task = tiny_task();
    roundtrip_parity(
        "herograph",
        HeroGraphModel::new(task.clone(), 8, 4),
        HeroGraphModel::new(task, 8, 4),
    );
}

/// The Scorer blanket impl and the EngineScorer must satisfy the same
/// trait object interface.
#[test]
fn engine_scorer_is_a_dyn_scorer() {
    let task = tiny_task();
    let mut m = BprModel::new(task, 8, 5);
    let engine =
        Engine::new(m.export_frozen(), EngineConfig::default()).expect("valid exported snapshot");
    let scorer = engine.scorer(0);
    let as_dyn: &dyn Scorer = &scorer;
    let s = as_dyn.score(&[0, 1], &[0, 1]);
    assert_eq!(s.len(), 2);
    assert!(s.iter().all(|x| x.is_finite()));
}
