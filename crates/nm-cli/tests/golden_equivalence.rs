//! Byte-for-byte behavior pins for the serving and streaming stacks.
//!
//! The golden fixtures were captured from the pre-`nm-sync` codebase —
//! before the coalescer, connection gate, exemplar ring, breaker,
//! supervisor, and sampler ring were extracted into generic
//! backend-parameterized cores. These tests rerun the exact fixture
//! workloads against the current binary and require identical bytes:
//! the refactor (and any future change to the extracted cores) must not
//! move a single observable decision.
//!
//! Both workloads are seeded and wall-clock-free in their durable
//! artifacts (latency fields are excluded from the chaos series dump;
//! the stream logs are derived purely from the seeded event source and
//! deterministic training), so byte-identity is expected across
//! machines and build profiles, not just across runs.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nmcdr-golden-{}-{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn assert_identical(got: &Path, want: &Path) {
    let got_bytes = std::fs::read(got).unwrap_or_else(|e| panic!("read {}: {e}", got.display()));
    let want_bytes = std::fs::read(want).unwrap_or_else(|e| panic!("read {}: {e}", want.display()));
    assert!(
        got_bytes == want_bytes,
        "{} differs from golden fixture {} ({} vs {} bytes)",
        got.display(),
        want.display(),
        got_bytes.len(),
        want_bytes.len()
    );
}

/// The ci.sh chaos drill: seeded fault injection (worker panics, shard
/// stalls, torn frames, reload failures, forced deadline expiries) over
/// a live server. The flight-recorder series dump excludes latency and
/// anything schedule-dependent, so a fixed seed pins every counter.
#[test]
fn chaos_series_dump_matches_pre_refactor_golden() {
    let dir = scratch("chaos");
    let series = dir.join("series.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_nmcdr"))
        .args([
            "chaos",
            "--seed",
            "806405",
            "--requests",
            "120",
            "--workers",
            "2",
        ])
        .arg("--series-out")
        .arg(&series)
        .output()
        .expect("run nmcdr chaos");
    assert!(
        out.status.success(),
        "chaos drill failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_identical(&series, &fixture("golden_chaos_series.jsonl"));
    std::fs::remove_dir_all(&dir).ok();
}

/// The ci.sh streaming smoke: 14 rounds of serve-while-train with a
/// preference inversion at round 8, requiring two hot-swaps and a
/// drift rollback. Every durable artifact — the framed event log, the
/// per-iteration decision log, and the committed runner state — must
/// be byte-identical to the pre-refactor capture.
#[test]
fn stream_artifacts_match_pre_refactor_golden() {
    let dir = scratch("stream");
    let out_dir = dir.join("out");
    let out = Command::new(env!("CARGO_BIN_EXE_nmcdr"))
        .args([
            "stream",
            "--scenario",
            "cloth-sport",
            "--scale",
            "0.0005",
            "--model",
            "HeroGraph",
            "--dim",
            "8",
            "--lr",
            "0.1",
            "--seed",
            "91",
            "--rounds",
            "14",
            "--events-per-round",
            "3072",
            "--slate",
            "6",
            "--slope",
            "8.0",
            "--shift-at",
            "8",
            "--loss-factor",
            "1.2",
            "--warmup",
            "4",
            "--microbatch",
            "3072",
            "--require-swaps",
            "2",
            "--require-rollbacks",
            "1",
        ])
        .arg("--out")
        .arg(&out_dir)
        .output()
        .expect("run nmcdr stream");
    assert!(
        out.status.success(),
        "stream smoke failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    for f in ["events.log", "decisions.log", "state.txt"] {
        assert_identical(&out_dir.join(f), &fixture(&format!("golden_stream/{f}")));
    }
    std::fs::remove_dir_all(&dir).ok();
}
