//! `nmcdr check` — the static-analysis gate.
//!
//! Four stages, each independent, all findings aggregated:
//!
//! 1. **Shape & graph verification**: every registered model (NMCDR +
//!    the 11 baselines) has a full optimizer step traced on probe
//!    batches at two batch-size pairs — forward (`nm-check` re-derives
//!    all shapes, verifies broadcast legality and topological order,
//!    checks every parameter is reachable from the loss, and diffs the
//!    two traces to prove batch dims propagate symbolically), then
//!    backward and a real Adam update, with the serialized optimizer
//!    state checked moment-by-moment against the parameter shapes.
//! 2. **NMCDR stage invariants**: the gate/residual/attention shape
//!    contracts of Eq. 5–19 via `NmcdrModel::check_stage_invariants`.
//! 3. **Workspace lint** against the checked-in allowlist
//!    (`scripts/lint_allowlist.tsv`); `--fix-allowlist` regenerates it.
//! 4. **Concurrency model checking**, requiring >= 1000 distinct
//!    schedules per invariant. The lock-free nm-obs/nm-stream
//!    algorithms are checked through state-machine mirrors; the
//!    monitor-based `nm-sync` cores (coalescer, connection gate,
//!    exemplar ring, breaker, supervisor, sampler ring) are checked
//!    directly — the production generic code instantiated with
//!    `VirtualBackend`, every blocking/atomic op a scheduling point.
//!
//! Flags: `--root <dir>` (workspace root, default `.`), `--json <file>`
//! (machine-readable findings report), `--fix-allowlist`,
//! `--allowlist <file>`, `--skip <shape,lint,sched>`.

use crate::args::Args;
use nm_autograd::TraceNode;
use nm_bench::{ExpProfile, ModelKind};
use nm_check::sched::models::{CounterModel, HistogramModel, SeqSinkModel, StreamRingModel};
use nm_check::sched::virt::{explore_virtual, VirtSpec};
use nm_check::sched::{cores, explore, ExploreOpts, Explored, SchedModel};
use nm_check::shape::{compare_symbolic, verify_reachability, verify_trace};
use nm_check::{diagnostics_to_json, lint, Diagnostic, Pass};
use nm_data::batch::Batch;
use nm_data::Scenario;
use nm_models::CdrModel;
use nm_nn::checkpoint::{read_tensor, read_u32};
use nm_optim::{Adam, Optimizer};
use nm_sync::{BreakerBug, CoalesceBug, DeltaBug, GateBug, RespawnBug, RingBug};
use nmcdr_core::NmcdrModel;
use std::collections::BTreeSet;
use std::rc::Rc;

pub fn check(args: &Args) -> Result<(), String> {
    let root = args.get("root").unwrap_or(".").to_string();
    let allowlist_path = args
        .get("allowlist")
        .unwrap_or("scripts/lint_allowlist.tsv")
        .to_string();
    let skip: BTreeSet<String> = args
        .get("skip")
        .map(|s| s.split(',').map(|x| x.trim().to_string()).collect())
        .unwrap_or_default();

    let mut diags: Vec<Diagnostic> = Vec::new();

    if !skip.contains("shape") {
        diags.extend(shape_stage()?);
    }
    if !skip.contains("lint") {
        diags.extend(lint_stage(
            &root,
            &allowlist_path,
            args.flag("fix-allowlist"),
        )?);
    }
    if !skip.contains("sched") {
        diags.extend(sched_stage());
    }

    if let Some(json_path) = args.get("json") {
        std::fs::write(json_path, diagnostics_to_json(&diags))
            .map_err(|e| format!("writing {json_path}: {e}"))?;
        println!("[check] findings report written to {json_path}");
    }

    if diags.is_empty() {
        println!("check: all passes green");
        Ok(())
    } else {
        for d in &diags {
            eprintln!("  {}", d.render());
        }
        Err(format!("check failed: {} finding(s)", diags.len()))
    }
}

// ---------------------------------------------------------------------
// stage 1+2: shape/graph/reachability over the full model registry
// ---------------------------------------------------------------------

/// Probe profile: smallest configuration every model accepts. The
/// verification is shape-level, so scale only affects trace-recording
/// time, not coverage.
fn probe_profile() -> ExpProfile {
    ExpProfile {
        scale: 0.002,
        dim: 8,
        epochs: 1,
        batch_size: 64,
        match_neighbors: 8,
        eval_negatives: 10,
        k_head: 6,
        seed: 2023,
        ..Default::default()
    }
}

/// Picks four distinct probe batch sizes that collide with no fixed
/// dimension of the models (parameter extents, user/item counts, config
/// constants). A collision would make the symbolic comparison unable to
/// tell "fixed dim" from "batch dim that failed to vary".
fn pick_batch_sizes(forbidden: &BTreeSet<usize>, max: usize) -> Result<[usize; 4], String> {
    let picks: Vec<usize> = (3..=max)
        .filter(|b| !forbidden.contains(b) && !forbidden.contains(&(b * 2)))
        .take(4)
        .collect();
    picks
        .try_into()
        .map_err(|_| "probe task too small to pick 4 distinct batch sizes".to_string())
}

fn shape_stage() -> Result<Vec<Diagnostic>, String> {
    let profile = probe_profile();
    let data = profile.dataset(Scenario::PhoneElec);
    let task = profile.task(data);

    // Fixed dims the batch sizes must avoid: model parameter extents
    // (covers hidden sizes, vocab sizes), raw user/item counts, and the
    // config constants that show up as group sizes.
    let mut forbidden: BTreeSet<usize> = BTreeSet::new();
    for d in [
        task.split_a.n_users,
        task.split_b.n_users,
        task.split_a.n_items,
        task.split_b.n_items,
        task.n_overlap(),
        profile.dim,
        2 * profile.dim,
        profile.k_head,
        profile.match_neighbors,
    ] {
        forbidden.insert(d);
    }
    for kind in ModelKind::ALL {
        let model = kind.build(Rc::clone(&task), &profile);
        for p in model.params() {
            let (r, c) = p.shape();
            forbidden.insert(r);
            forbidden.insert(c);
        }
    }
    let cap = task
        .split_a
        .n_users
        .min(task.split_b.n_users)
        .min(task.split_a.n_items)
        .min(task.split_b.n_items);
    let [ba1, bb1, ba2, bb2] = pick_batch_sizes(&forbidden, cap)?;
    println!("[check] shape: probe batches ({ba1},{bb1}) vs ({ba2},{bb2}), 12 models");

    let mut diags = Vec::new();
    for kind in ModelKind::ALL {
        let mut model = kind.build(Rc::clone(&task), &profile);
        model.begin_epoch(0);
        let mut opt = Adam::new(1e-4);
        let (trace1, reach) = trace_optimizer_step(&*model, ba1, bb1, &mut opt);
        let prefix = |d: Diagnostic| Diagnostic {
            location: format!("{}:{}", kind.name(), d.location),
            ..d
        };
        diags.extend(verify_trace(&trace1).into_iter().map(prefix));
        let loss_index = trace1.len() - 1;
        diags.extend(
            verify_reachability(&trace1, loss_index, &reach)
                .into_iter()
                .map(prefix),
        );
        let (trace2, _) = trace_optimizer_step(&*model, ba2, bb2, &mut opt);
        diags.extend(
            compare_symbolic(&trace1, &trace2, &[ba1, bb1], &[ba2, bb2])
                .into_iter()
                .map(prefix),
        );
        // Two Adam steps at two different batch sizes have now run; the
        // moments were allocated on the first and must still be
        // congruent with the parameter shapes after the second.
        diags.extend(
            verify_adam_state(&opt, &model.params(), 2)
                .into_iter()
                .map(prefix),
        );
    }

    // NMCDR-specific stage contracts (Eq. 5-19).
    let nmcdr = NmcdrModel::new(
        Rc::clone(&task),
        nm_bench::nmcdr_config(&profile, nmcdr_core::Ablation::none()),
    );
    for msg in nmcdr.check_stage_invariants() {
        diags.push(Diagnostic::new(
            Pass::Shape,
            "shape/stage-invariant",
            "NMCDR",
            msg,
        ));
    }

    // Profiler cost-model sweep: every registry op kind must carry an
    // analytic FLOP/byte rule, or `obs profile` would lie by omission.
    diags.extend(nm_check::shape::verify_op_coverage(
        nm_autograd::OP_KINDS,
        &nm_autograd::has_rule,
    ));

    let n = diags.len();
    println!(
        "[check] shape: {} model traces verified, {n} finding(s)",
        ModelKind::ALL.len() * 2
    );
    Ok(diags)
}

/// Traces one *full optimizer step* at the given per-domain batch
/// sizes: forward (the exported trace feeds the shape verifier),
/// parameter-reachability probe, backward, gradient absorption, and a
/// real Adam update. The trace is exported *before* the probe binds so
/// a never-bound parameter's fresh leaf cannot mask itself; the probe
/// binds before backward, so even loss-unreachable parameters carry a
/// (zero) gradient and the optimizer allocates a moment pair for every
/// parameter.
fn trace_optimizer_step(
    model: &dyn CdrModel,
    batch_a: usize,
    batch_b: usize,
    opt: &mut Adam,
) -> (Vec<TraceNode>, Vec<(String, Option<usize>)>) {
    let mut tape = nm_autograd::Tape::new();
    let ba = probe_batch(batch_a);
    let bb = probe_batch(batch_b);
    let loss = model.loss(&mut tape, &ba, &bb, 0);
    let trace = tape.export_trace();
    let params = model.params();
    let reach = params
        .iter()
        .map(|p| {
            let before = tape.len();
            let var = p.bind(&mut tape);
            let bound = tape.len() == before;
            (p.name().to_string(), bound.then(|| var.index()))
        })
        .collect();
    tape.backward(loss);
    for p in &params {
        p.absorb_grad(&tape);
    }
    opt.step(&params);
    (trace, reach)
}

/// Serializes the optimizer state and checks it field by field against
/// the live parameter set: step counter, moment-pair count, and the
/// shape of every first/second moment tensor. A drifted moment would
/// silently mis-scale updates after a checkpoint restore; this proves
/// the exported state is congruent before it can ever be imported.
fn verify_adam_state(opt: &Adam, params: &[&nm_nn::Param], steps: u32) -> Vec<Diagnostic> {
    let mut buf = Vec::new();
    if let Err(e) = opt.export_state(&mut buf) {
        return vec![Diagnostic::new(
            Pass::Shape,
            "optim/state-export",
            "Adam",
            format!("optimizer state failed to serialize: {e}"),
        )];
    }
    let expected: Vec<(String, usize, usize)> = params
        .iter()
        .map(|p| {
            let (r, c) = p.shape();
            (p.name().to_string(), r, c)
        })
        .collect();
    verify_adam_export(&buf, &expected, steps)
}

/// Pure verifier over the serialized Adam state bytes — separated from
/// [`verify_adam_state`] so the negative test can feed it a
/// deliberately shape-drifted export.
fn verify_adam_export(
    buf: &[u8],
    expected: &[(String, usize, usize)],
    steps: u32,
) -> Vec<Diagnostic> {
    const RULE: &str = "optim/moment-shape";
    let diag = |loc: &str, msg: String| Diagnostic::new(Pass::Shape, RULE, loc.to_string(), msg);
    let r = &mut &buf[..];
    let t = match read_u32(r) {
        Ok(t) => t,
        Err(e) => return vec![diag("Adam", format!("unreadable step counter: {e}"))],
    };
    let mut diags = Vec::new();
    if t != steps {
        diags.push(diag(
            "Adam",
            format!("state records {t} optimizer steps, trace ran {steps}"),
        ));
    }
    let n = match read_u32(r) {
        Ok(n) => n as usize,
        Err(e) => {
            diags.push(diag("Adam", format!("unreadable moment count: {e}")));
            return diags;
        }
    };
    if n != expected.len() {
        diags.push(diag(
            "Adam",
            format!(
                "state holds {n} moment pairs, model has {} parameters",
                expected.len()
            ),
        ));
        return diags;
    }
    for (name, rows, cols) in expected {
        let pair = read_tensor(r).and_then(|m| read_tensor(r).map(|v| (m, v)));
        let (m, v) = match pair {
            Ok(p) => p,
            Err(e) => {
                diags.push(diag(name, format!("unreadable moment tensors: {e}")));
                return diags;
            }
        };
        for (which, t) in [("first", &m), ("second", &v)] {
            let (mr, mc) = t.shape();
            if (mr, mc) != (*rows, *cols) {
                diags.push(diag(
                    name,
                    format!(
                        "{which} moment is {mr}x{mc}, parameter is {rows}x{cols} \
                         (shape-drifted optimizer state)"
                    ),
                ));
            }
        }
    }
    diags
}

/// Distinct in-range users/items, all labeled positive. All-positive
/// matters: pairwise losses (BPR, DML) keep only the positive subset,
/// and the symbolic comparison needs every derived row count to stay
/// proportional to the batch size.
fn probe_batch(n: usize) -> Batch {
    Batch {
        users: (0..n as u32).collect(),
        items: (0..n as u32).collect(),
        labels: vec![1.0; n],
    }
}

// ---------------------------------------------------------------------
// stage 3: workspace lint + allowlist
// ---------------------------------------------------------------------

fn lint_stage(root: &str, allowlist_path: &str, fix: bool) -> Result<Vec<Diagnostic>, String> {
    let root_path = std::path::Path::new(root);
    let hits = lint::lint_workspace(root_path).map_err(|e| format!("lint walk: {e}"))?;

    if fix {
        let text = lint::render_allowlist(&lint::counts(&hits));
        let path = root_path.join(allowlist_path);
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "[check] lint: baseline regenerated at {} ({} hits)",
            path.display(),
            hits.len()
        );
        return Ok(Vec::new());
    }

    let path = root_path.join(allowlist_path);
    let (baseline, mut diags) = match std::fs::read_to_string(&path) {
        Ok(text) => lint::parse_allowlist(&text),
        Err(e) => {
            return Err(format!(
                "allowlist {} unreadable ({e}); run `nmcdr check --fix-allowlist` once to \
                 create the baseline",
                path.display()
            ))
        }
    };
    let report = lint::compare(&hits, &baseline);
    for (rule, file, now, allowed) in &report.burned_down {
        println!(
            "[check] lint: {rule} {file} burned down {allowed} -> {now}; tighten with \
             --fix-allowlist"
        );
    }
    println!(
        "[check] lint: {} hit(s) total, {} above baseline",
        hits.len(),
        report.new_violations.len()
    );
    diags.extend(report.new_violations);
    Ok(diags)
}

// ---------------------------------------------------------------------
// stage 4: concurrency model checking
// ---------------------------------------------------------------------

fn sched_stage() -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Lock-free algorithms: checked through their state-machine mirrors.
    run_sched(&mut diags, "obs.counter", CounterModel::atomic(2, 7));
    run_sched(&mut diags, "obs.histogram", HistogramModel::correct(4, 3));
    run_sched(&mut diags, "obs.trace-seq", SeqSinkModel::correct(3, 3));
    run_sched(
        &mut diags,
        "stream.ring",
        StreamRingModel::correct(6, 3, 2, 2),
    );
    // Monitor-based cores: the *production* nm-sync generics under
    // VirtualBackend — the code nm-serve/nm-obs actually run, with each
    // seeded-bug knob off. Preemption bounds are tuned so every core
    // clears the 1000-schedule bar without open-ended exploration.
    run_sched_virtual(
        &mut diags,
        "serve.coalescer",
        Some(2),
        cores::coalescer(3, 2, CoalesceBug::None),
    );
    run_sched_virtual(
        &mut diags,
        "serve.conn-slots",
        Some(3),
        cores::conn_gate(3, 2, GateBug::None),
    );
    run_sched_virtual(
        &mut diags,
        "serve.exemplar-ring",
        None,
        cores::exemplar_ring(3, 2, RingBug::None),
    );
    run_sched_virtual(
        &mut diags,
        "obs.sampler-ring",
        Some(3),
        cores::sampler_ring(2, 2, 2, DeltaBug::None),
    );
    run_sched_virtual(
        &mut diags,
        "serve.breaker",
        Some(2),
        cores::breaker(4, BreakerBug::None),
    );
    run_sched_virtual(
        &mut diags,
        "serve.supervisor",
        Some(2),
        cores::supervisor(3, RespawnBug::None),
    );
    diags
}

fn run_sched<M: SchedModel>(diags: &mut Vec<Diagnostic>, name: &str, model: M) {
    let r = explore(&model, &ExploreOpts::default());
    println!("[check] sched: {name}: {} schedules explored", r.schedules);
    record_sched(diags, name, &r);
}

fn run_sched_virtual(
    diags: &mut Vec<Diagnostic>,
    name: &str,
    bound: Option<u32>,
    mk: impl Fn() -> VirtSpec,
) {
    let opts = ExploreOpts {
        preemption_bound: bound,
        ..Default::default()
    };
    let r = explore_virtual(mk, &opts);
    println!(
        "[check] sched: {name}: {} schedules explored (real core, virtualized)",
        r.schedules
    );
    record_sched(diags, name, &r);
}

fn record_sched(diags: &mut Vec<Diagnostic>, name: &str, r: &Explored) {
    if let Some(d) = r.to_diagnostic(name) {
        diags.push(d);
    }
    if r.schedules < 1000 {
        diags.push(Diagnostic::new(
            Pass::Sched,
            "sched/coverage",
            name.to_string(),
            format!(
                "only {} schedules explored; the acceptance bar is 1000 per invariant",
                r.schedules
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_nn::Param;
    use nm_tensor::Tensor;

    /// One gradient + Adam step on a single (2x3) parameter, state
    /// exported for verification.
    fn stepped_adam_export() -> (Adam, Vec<u8>) {
        let p = Param::new("w", Tensor::zeros(2, 3));
        let mut tape = nm_autograd::Tape::new();
        let w = p.bind(&mut tape);
        let l = tape.sum_all(w);
        tape.backward(l);
        p.absorb_grad(&tape);
        let mut opt = Adam::new(0.1);
        opt.step(&[&p]);
        let mut buf = Vec::new();
        opt.export_state(&mut buf).expect("export");
        (opt, buf)
    }

    #[test]
    fn congruent_adam_state_is_clean() {
        let (_, buf) = stepped_adam_export();
        let diags = verify_adam_export(&buf, &[("w".into(), 2, 3)], 1);
        assert!(diags.is_empty(), "{:?}", diags);
    }

    #[test]
    fn shape_drifted_moment_is_rejected() {
        // The exported moments are 2x3; claim the parameter is 4x3 — as
        // if the moment tensors drifted from the weights they scale.
        let (_, buf) = stepped_adam_export();
        let diags = verify_adam_export(&buf, &[("w".into(), 4, 3)], 1);
        assert_eq!(diags.len(), 2, "{:?}", diags); // first AND second moment
        for d in &diags {
            assert_eq!(d.rule, "optim/moment-shape");
            assert!(d.render().contains("shape-drifted"), "{}", d.render());
        }
    }

    #[test]
    fn wrong_step_count_is_rejected() {
        let (_, buf) = stepped_adam_export();
        let diags = verify_adam_export(&buf, &[("w".into(), 2, 3)], 2);
        assert_eq!(diags.len(), 1, "{:?}", diags);
        assert!(
            diags[0].render().contains("optimizer steps"),
            "{}",
            diags[0].render()
        );
    }

    #[test]
    fn wrong_moment_count_is_rejected() {
        let (_, buf) = stepped_adam_export();
        let diags = verify_adam_export(&buf, &[("w".into(), 2, 3), ("b".into(), 1, 3)], 1);
        assert_eq!(diags.len(), 1, "{:?}", diags);
        assert!(
            diags[0].render().contains("moment pairs"),
            "{}",
            diags[0].render()
        );
    }
}
