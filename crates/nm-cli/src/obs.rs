//! `nmcdr obs` — offline trace tooling.
//!
//! Reads a line-JSON trace produced by `train --trace-out`, the serve
//! `{"op":"trace"}` endpoint, or any [`nm_obs::trace`] file sink.
//! Every line is parsed against the documented schema version 1
//! *strictly* (via [`nm_obs::parse`] — unknown fields and wrong types
//! are errors, so the schema cannot drift silently), then:
//!
//! * `obs validate` — structural validation (used by `scripts/ci.sh`);
//! * `obs report`   — self-time profile table;
//! * `obs flame`    — collapsed-stack fold + self-contained SVG
//!   flamegraph + critical-path report, via [`nm_obs::flame`].
//!
//! Two more actions read a *flight-recorder dump* (line-JSON from
//! `nmcdr chaos --series-out` or [`nm_obs::slo::Telemetry::dump`])
//! instead of a trace:
//!
//! * `obs tail` — per-tick request/error/degraded rates and latency
//!   quantiles, plus a window summary;
//! * `obs slo`  — burn-rate replay: error-budget table and alert
//!   transitions, with `--require-alerts N` / `--require-clean` CI
//!   gates.

use crate::args::Args;
use nm_obs::parse::parse_trace;
use nm_obs::report::{profile, render_profile, validate, TraceRecord};

/// Entry point for `nmcdr obs <action>`.
pub fn run(action: &str, args: &Args) -> Result<(), String> {
    if action == "flame" {
        return flame(args);
    }
    if action == "tail" || action == "slo" {
        return series(action, args);
    }
    let path = args.required("trace")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace '{path}': {e}"))?;
    let records = parse_trace(&text)?;
    let summary = validate(&records).map_err(|e| format!("invalid trace '{path}': {e}"))?;
    let out = match action {
        "validate" => format!(
            "{path}: OK ({} records: {} spans, {} events)\n",
            records.len(),
            summary.spans,
            summary.events
        ),
        "report" => format!(
            "{}({} spans, {} events in {path})\n",
            render_profile(&profile(&records)),
            summary.spans,
            summary.events
        ),
        other => {
            return Err(format!(
                "unknown obs action '{other}' (expected: report, validate, flame, tail, slo)"
            ))
        }
    };
    print_piped(&out);
    Ok(())
}

/// `nmcdr obs tail --series dump.jsonl [--window N]`
/// `nmcdr obs slo  --series dump.jsonl [--require-alerts N] [--require-clean]`
///
/// Both parse the dump strictly (schema drift is an error, like traces)
/// and render deterministically: the same dump always produces the same
/// bytes, so the outputs are golden-fixture testable and CI-gateable.
fn series(action: &str, args: &Args) -> Result<(), String> {
    let path = args.required("series")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read series '{path}': {e}"))?;
    let series =
        nm_obs::parse_series(&text).map_err(|e| format!("invalid series '{path}': {e}"))?;
    if action == "tail" {
        let window: usize = args.parse_or("window", 20)?;
        if window == 0 {
            return Err("--window must be at least 1".into());
        }
        print_piped(&nm_obs::render_tail(&series.ticks, window));
        return Ok(());
    }
    let report = nm_obs::render_slo_report(&series);
    print_piped(&report);
    let (transitions, _) = nm_obs::evaluate_series(&series);
    let alerts = nm_obs::count_alerts(&transitions);
    if args.flag("require-clean") && alerts > 0 {
        return Err(format!(
            "--require-clean: {alerts} burn-rate alert(s) fired on a run expected to be clean"
        ));
    }
    let want: usize = args.parse_or("require-alerts", 0)?;
    if alerts < want {
        return Err(format!(
            "only {alerts} burn-rate alert(s) fired, --require-alerts {want} not met"
        ));
    }
    Ok(())
}

/// `nmcdr obs flame --in trace.jsonl --out flame.svg
///                  [--collapsed stacks.txt]`
///
/// Accepts `--trace` as an alias for `--in` so all `obs` actions take
/// the same input flag.
fn flame(args: &Args) -> Result<(), String> {
    let path = match args.get("in").or_else(|| args.get("trace")) {
        Some(p) => p,
        None => return Err("missing --in (or --trace)".into()),
    };
    let out_path = args.required("out")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace '{path}': {e}"))?;
    let records = parse_trace(&text)?;
    validate(&records).map_err(|e| format!("invalid trace '{path}': {e}"))?;
    let folded = nm_obs::flame::fold(&records);

    // Conservation check: folded self time must reproduce the root
    // spans' inclusive time exactly — if it doesn't, the fold (or the
    // trace) is lying and the graph would misattribute time.
    let folded_total = nm_obs::flame::total_us(&folded);
    let root_total: u64 = records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Span {
                depth: 0, dur_us, ..
            } => Some(*dur_us),
            _ => None,
        })
        .sum();
    if folded_total != root_total {
        return Err(format!(
            "fold lost time: folded self {folded_total}us != root total {root_total}us"
        ));
    }

    let svg = nm_obs::flame::render_svg(&folded);
    std::fs::write(out_path, &svg).map_err(|e| format!("cannot write svg '{out_path}': {e}"))?;
    if let Some(collapsed_path) = args.get("collapsed") {
        std::fs::write(collapsed_path, nm_obs::flame::render_collapsed(&folded))
            .map_err(|e| format!("cannot write collapsed '{collapsed_path}': {e}"))?;
    }
    let rows = nm_obs::flame::critical_path(&folded);
    let out = format!(
        "{out_path}: {} frames, {folded_total}us total (= root span time)\n\ncritical path:\n{}",
        folded.len(),
        nm_obs::flame::render_critical_path(&rows)
    );
    print_piped(&out);
    Ok(())
}

/// Reports are made for piping into head/grep: a closed pipe ends the
/// output, it is not a crash.
fn print_piped(out: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
}
