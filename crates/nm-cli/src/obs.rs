//! `nmcdr obs` — offline trace tooling.
//!
//! Reads a line-JSON trace produced by `train --trace-out` (or any
//! [`nm_obs::trace`] file sink), parses each line against the
//! documented schema version 1 *strictly* — unknown fields and wrong
//! types are errors, so the schema cannot drift silently — and then
//! either validates the structure (`obs validate`, used by
//! `scripts/ci.sh`) or renders a self-time profile (`obs report`).

use crate::args::Args;
use nm_obs::report::{profile, render_profile, validate, TraceRecord};
use nm_serve::Json;

/// Entry point for `nmcdr obs <action> --trace <file>`.
pub fn run(action: &str, args: &Args) -> Result<(), String> {
    let path = args.required("trace")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace '{path}': {e}"))?;
    let records = parse_trace(&text)?;
    let summary = validate(&records).map_err(|e| format!("invalid trace '{path}': {e}"))?;
    let out = match action {
        "validate" => format!(
            "{path}: OK ({} records: {} spans, {} events)\n",
            records.len(),
            summary.spans,
            summary.events
        ),
        "report" => format!(
            "{}({} spans, {} events in {path})\n",
            render_profile(&profile(&records)),
            summary.spans,
            summary.events
        ),
        other => {
            return Err(format!(
                "unknown obs action '{other}' (expected: report, validate)"
            ))
        }
    };
    // The report is made for piping into head/grep: a closed pipe ends
    // the output, it is not a crash.
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
    Ok(())
}

/// Parses every non-empty line of a trace file, strictly.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let json = Json::parse(line).map_err(|e| format!("line {n}: not valid JSON: {e}"))?;
        records.push(record_from(&json).map_err(|e| format!("line {n}: {e}"))?);
    }
    Ok(records)
}

/// Converts one parsed JSON line into a [`TraceRecord`], rejecting
/// unknown fields, missing fields, and type mismatches.
fn record_from(json: &Json) -> Result<TraceRecord, String> {
    let Json::Obj(pairs) = json else {
        return Err("trace line is not a JSON object".into());
    };
    let t = json
        .get("t")
        .and_then(Json::as_str)
        .ok_or("missing string field \"t\"")?;
    let allowed: &[&str] = match t {
        "meta" => &["t", "version", "clock", "seq"],
        "span" => &[
            "t", "name", "start_us", "dur_us", "self_us", "depth", "tid", "seq",
        ],
        "event" => &["t", "name", "at_us", "tid", "seq", "f"],
        other => return Err(format!("unknown record type {other:?}")),
    };
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown field {k:?} on {t:?} record"));
        }
    }
    let need_u64 = |key: &str| -> Result<u64, String> {
        json.get(key)
            .ok_or_else(|| format!("missing field {key:?} on {t:?} record"))?
            .as_u64()
            .ok_or_else(|| format!("field {key:?} on {t:?} record is not a non-negative integer"))
    };
    let need_str = |key: &str| -> Result<String, String> {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {key:?} on {t:?} record"))
    };
    match t {
        "meta" => Ok(TraceRecord::Meta {
            version: need_u64("version")?,
        }),
        "span" => Ok(TraceRecord::Span {
            name: need_str("name")?,
            start_us: need_u64("start_us")?,
            dur_us: need_u64("dur_us")?,
            self_us: need_u64("self_us")?,
            depth: need_u64("depth")?,
            tid: need_u64("tid")?,
            seq: need_u64("seq")?,
        }),
        "event" => {
            if let Some(f) = json.get("f") {
                if !matches!(f, Json::Obj(_)) {
                    return Err("field \"f\" on \"event\" record is not an object".into());
                }
            }
            Ok(TraceRecord::Event {
                name: need_str("name")?,
                at_us: need_u64("at_us")?,
                tid: need_u64("tid")?,
                seq: need_u64("seq")?,
            })
        }
        _ => unreachable!("type checked above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = r#"{"t":"meta","version":1,"clock":"monotonic_us","seq":0}"#;

    #[test]
    fn parses_the_documented_schema() {
        let text = format!(
            "{META}\n\
             {{\"t\":\"span\",\"name\":\"train.forward\",\"start_us\":5,\"dur_us\":10,\"self_us\":10,\"depth\":0,\"tid\":0,\"seq\":1}}\n\
             {{\"t\":\"event\",\"name\":\"epoch\",\"at_us\":20,\"tid\":0,\"seq\":2,\"f\":{{\"epoch\":0,\"mean_loss\":0.5}}}}\n"
        );
        let recs = parse_trace(&text).unwrap();
        assert_eq!(recs.len(), 3);
        let s = validate(&recs).unwrap();
        assert_eq!(s.spans, 1);
        assert_eq!(s.events, 1);
        assert_eq!(profile(&recs)[0].name, "train.forward");
    }

    #[test]
    fn rejects_unknown_fields() {
        let text = format!(
            "{META}\n{{\"t\":\"event\",\"name\":\"e\",\"at_us\":1,\"tid\":0,\"seq\":1,\"bogus\":1}}\n"
        );
        let err = parse_trace(&text).unwrap_err();
        assert!(err.contains("unknown field \"bogus\""), "{err}");
    }

    #[test]
    fn rejects_missing_and_mistyped_fields() {
        let no_dur = format!(
            "{META}\n{{\"t\":\"span\",\"name\":\"x\",\"start_us\":0,\"self_us\":0,\"depth\":0,\"tid\":0,\"seq\":1}}\n"
        );
        assert!(parse_trace(&no_dur).unwrap_err().contains("dur_us"));
        let neg = format!(
            "{META}\n{{\"t\":\"event\",\"name\":\"e\",\"at_us\":-3,\"tid\":0,\"seq\":1}}\n"
        );
        assert!(parse_trace(&neg)
            .unwrap_err()
            .contains("non-negative integer"));
        let bad_f = format!(
            "{META}\n{{\"t\":\"event\",\"name\":\"e\",\"at_us\":1,\"tid\":0,\"seq\":1,\"f\":3}}\n"
        );
        assert!(parse_trace(&bad_f).unwrap_err().contains("not an object"));
    }

    #[test]
    fn rejects_unknown_record_type_and_non_object() {
        let bad_t = format!("{META}\n{{\"t\":\"blob\"}}\n");
        assert!(parse_trace(&bad_t)
            .unwrap_err()
            .contains("unknown record type"));
        let arr = format!("{META}\n[1,2]\n");
        assert!(parse_trace(&arr).unwrap_err().contains("not a JSON object"));
        assert!(parse_trace("not json\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn validator_flags_non_monotonic_timestamps_through_the_cli_path() {
        // seq strictly increasing but the second span ends before the
        // first on the same thread — structural validation catches it.
        let text = format!(
            "{META}\n\
             {{\"t\":\"span\",\"name\":\"a\",\"start_us\":0,\"dur_us\":100,\"self_us\":100,\"depth\":0,\"tid\":0,\"seq\":1}}\n\
             {{\"t\":\"span\",\"name\":\"b\",\"start_us\":10,\"dur_us\":5,\"self_us\":5,\"depth\":0,\"tid\":0,\"seq\":2}}\n"
        );
        let recs = parse_trace(&text).unwrap();
        assert!(validate(&recs).unwrap_err().contains("non-monotonic"));
    }
}
