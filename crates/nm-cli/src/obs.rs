//! `nmcdr obs` — offline trace tooling.
//!
//! Reads a line-JSON trace produced by `train --trace-out`, the serve
//! `{"op":"trace"}` endpoint, or any [`nm_obs::trace`] file sink.
//! Every line is parsed against the documented schema version 1
//! *strictly* (via [`nm_obs::parse`] — unknown fields and wrong types
//! are errors, so the schema cannot drift silently), then:
//!
//! * `obs validate` — structural validation (used by `scripts/ci.sh`);
//! * `obs report`   — self-time profile table;
//! * `obs flame`    — collapsed-stack fold + self-contained SVG
//!   flamegraph + critical-path report, via [`nm_obs::flame`].
//!
//! Two more actions read a *flight-recorder dump* (line-JSON from
//! `nmcdr chaos --series-out` or [`nm_obs::slo::Telemetry::dump`])
//! instead of a trace:
//!
//! * `obs tail` — per-tick request/error/degraded rates and latency
//!   quantiles, plus a window summary;
//! * `obs slo`  — burn-rate replay: error-budget table and alert
//!   transitions, with `--require-alerts N` / `--require-clean` CI
//!   gates.
//!
//! And one reads a *kernel-profile dump* (`train --profile-out` /
//! `stream --profile-out`), optionally joined with a trace:
//!
//! * `obs profile` — per-op roofline report (self time, achieved
//!   GFLOP/s and GB/s, arithmetic intensity, memory- vs compute-bound
//!   class), plus the `--compare` differential gate.

use crate::args::Args;
use nm_obs::parse::parse_trace;
use nm_obs::report::{profile, render_profile, validate, TraceRecord};

/// Entry point for `nmcdr obs <action>`.
pub fn run(action: &str, args: &Args) -> Result<(), String> {
    if action == "flame" {
        return flame(args);
    }
    if action == "tail" || action == "slo" {
        return series(action, args);
    }
    if action == "profile" {
        return kernel_profile(args);
    }
    let path = args.required("trace")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace '{path}': {e}"))?;
    let records = parse_trace(&text)?;
    let summary = validate(&records).map_err(|e| format!("invalid trace '{path}': {e}"))?;
    let out = match action {
        "validate" => format!(
            "{path}: OK ({} records: {} spans, {} events)\n",
            records.len(),
            summary.spans,
            summary.events
        ),
        "report" => format!(
            "{}({} spans, {} events in {path})\n",
            render_profile(&profile(&records)),
            summary.spans,
            summary.events
        ),
        other => {
            return Err(format!(
                "unknown obs action '{other}' \
                 (expected: report, validate, flame, tail, slo, profile)"
            ))
        }
    };
    print_piped(&out);
    Ok(())
}

/// `nmcdr obs tail --series dump.jsonl [--window N]`
/// `nmcdr obs slo  --series dump.jsonl [--require-alerts N] [--require-clean]`
///
/// Both parse the dump strictly (schema drift is an error, like traces)
/// and render deterministically: the same dump always produces the same
/// bytes, so the outputs are golden-fixture testable and CI-gateable.
fn series(action: &str, args: &Args) -> Result<(), String> {
    let path = args.required("series")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read series '{path}': {e}"))?;
    let series =
        nm_obs::parse_series(&text).map_err(|e| format!("invalid series '{path}': {e}"))?;
    if action == "tail" {
        let window: usize = args.parse_or("window", 20)?;
        if window == 0 {
            return Err("--window must be at least 1".into());
        }
        print_piped(&nm_obs::render_tail(&series.ticks, window));
        return Ok(());
    }
    let report = nm_obs::render_slo_report(&series);
    print_piped(&report);
    let (transitions, _) = nm_obs::evaluate_series(&series);
    let alerts = nm_obs::count_alerts(&transitions);
    if args.flag("require-clean") && alerts > 0 {
        return Err(format!(
            "--require-clean: {alerts} burn-rate alert(s) fired on a run expected to be clean"
        ));
    }
    let want: usize = args.parse_or("require-alerts", 0)?;
    if alerts < want {
        return Err(format!(
            "only {alerts} burn-rate alert(s) fired, --require-alerts {want} not met"
        ));
    }
    Ok(())
}

/// `nmcdr obs profile --profile dump.jsonl [--trace run.jsonl]`
/// `nmcdr obs profile --profile new.jsonl --compare old.jsonl
///                    [--compare-trace old-run.jsonl]
///                    [--rel-tol 0.5] [--abs-floor-us 200]`
///
/// Report mode joins the deterministic per-op dump (`--profile-out`)
/// with the measured `obs.profile.time` self-times and the
/// `obs.profile.peaks` machine ceilings from the run's trace, and
/// renders the top-ops roofline table. Without `--trace` the counters
/// still render; times and roofline classes show as unknown.
///
/// Compare mode is the differential gate: deterministic counters must
/// match *exactly* (any drift in the op stream, the cost model, or
/// allocation traffic fails), while per-op self-times are compared
/// under `nmcdr bench`-style noise-aware thresholds — both the
/// relative tolerance AND the absolute floor must be exceeded to fail.
/// Exits non-zero on regression, so CI can gate on it.
fn kernel_profile(args: &Args) -> Result<(), String> {
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))
    };
    let load_dump = |path: &str| -> Result<nm_obs::ProfileDump, String> {
        nm_obs::parse_dump(&read(path)?).map_err(|e| format!("invalid profile dump '{path}': {e}"))
    };
    let load_timings = |key: &str| -> Result<
        (
            std::collections::BTreeMap<String, nm_obs::OpTiming>,
            Option<nm_obs::Peaks>,
        ),
        String,
    > {
        match args.get(key) {
            Some(path) => nm_obs::profile::parse_trace_timings(&read(path)?)
                .map_err(|e| format!("invalid trace '{path}': {e}")),
            None => Ok((std::collections::BTreeMap::new(), None)),
        }
    };

    let dump_path = args.required("profile")?;
    let dump = load_dump(dump_path)?;
    let (timings, peaks) = load_timings("trace")?;

    if let Some(old_path) = args.get("compare") {
        let old = load_dump(old_path)?;
        let (old_timings, _) = load_timings("compare-trace")?;
        let defaults = nm_obs::profile::CompareConfig::default();
        let cfg = nm_obs::profile::CompareConfig {
            rel_tol: args.parse_or("rel-tol", defaults.rel_tol)?,
            abs_floor_ns: args.parse_or::<u64>("abs-floor-us", defaults.abs_floor_ns / 1000)?
                * 1000,
        };
        let diff = nm_obs::profile::compare(&dump, &timings, &old, &old_timings, &cfg);
        print_piped(&nm_obs::profile::render_verdict(&diff, &cfg));
        if diff.failed() {
            return Err(format!("profile regression against '{old_path}'"));
        }
        return Ok(());
    }
    print_piped(&nm_obs::profile::render_report(
        &dump,
        &timings,
        peaks.as_ref(),
    ));
    Ok(())
}

/// `nmcdr obs flame --in trace.jsonl --out flame.svg
///                  [--collapsed stacks.txt]`
///
/// Accepts `--trace` as an alias for `--in` so all `obs` actions take
/// the same input flag.
fn flame(args: &Args) -> Result<(), String> {
    let path = match args.get("in").or_else(|| args.get("trace")) {
        Some(p) => p,
        None => return Err("missing --in (or --trace)".into()),
    };
    let out_path = args.required("out")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace '{path}': {e}"))?;
    let records = parse_trace(&text)?;
    validate(&records).map_err(|e| format!("invalid trace '{path}': {e}"))?;
    let folded = nm_obs::flame::fold(&records);

    // Conservation check: folded self time must reproduce the root
    // spans' inclusive time exactly — if it doesn't, the fold (or the
    // trace) is lying and the graph would misattribute time.
    let folded_total = nm_obs::flame::total_us(&folded);
    let root_total: u64 = records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Span {
                depth: 0, dur_us, ..
            } => Some(*dur_us),
            _ => None,
        })
        .sum();
    if folded_total != root_total {
        return Err(format!(
            "fold lost time: folded self {folded_total}us != root total {root_total}us"
        ));
    }

    let svg = nm_obs::flame::render_svg(&folded);
    std::fs::write(out_path, &svg).map_err(|e| format!("cannot write svg '{out_path}': {e}"))?;
    if let Some(collapsed_path) = args.get("collapsed") {
        std::fs::write(collapsed_path, nm_obs::flame::render_collapsed(&folded))
            .map_err(|e| format!("cannot write collapsed '{collapsed_path}': {e}"))?;
    }
    let rows = nm_obs::flame::critical_path(&folded);
    let out = format!(
        "{out_path}: {} frames, {folded_total}us total (= root span time)\n\ncritical path:\n{}",
        folded.len(),
        nm_obs::flame::render_critical_path(&rows)
    );
    print_piped(&out);
    Ok(())
}

/// Reports are made for piping into head/grep: a closed pipe ends the
/// output, it is not a crash.
fn print_piped(out: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(out.as_bytes());
}
