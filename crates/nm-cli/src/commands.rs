//! The CLI subcommands.

use crate::args::Args;
use nm_bench::{nmcdr_config, ExpProfile, ModelKind};
use nm_data::generate::generate as generate_dataset;
use nm_data::{CdrDataset, Scenario};
use nm_models::{train_joint_ft, CdrModel, CdrTask, FtConfig, TaskConfig};
use nmcdr_core::{Ablation, NmcdrModel};
use std::path::{Path, PathBuf};
use std::rc::Rc;

pub fn print_help() {
    println!(
        "nmcdr — Neural Node Matching for Multi-Target Cross Domain Recommendation

USAGE:
  nmcdr <command> [--key value ...]

COMMANDS:
  generate   synthesize a two-domain dataset and write interaction logs
             --scenario <name> [--scale 0.004] [--seed N] --out <dir>
  train      train a model and report leave-one-out HR@10 / NDCG@10
             (--scenario <name> | --domain-a <file> --domain-b <file>
              [--alignment <file>])
             [--model NMCDR] [--overlap 1.0] [--density 1.0]
             [--dim 16] [--epochs 6] [--lr 0.01] [--seed N]
             [--checkpoint <file>] [--checkpoint-every 1] [--resume]
             [--max-rollbacks 3] [--early-stop] [--trace-out <file.jsonl>]
             [--profile-out <dump.jsonl>] per-op kernel profile: call
             counts, modeled FLOPs/bytes, alloc traffic (deterministic
             dump; measured self-times go into --trace-out)
             with --checkpoint, training state is saved atomically at
             epoch boundaries; --resume continues a killed run from the
             checkpoint and reproduces the uninterrupted result exactly
  evaluate   load a checkpoint and evaluate without training
             (same data options as train) --model <name> --checkpoint <file>
  stats      print Table-I style statistics for a scenario
             --scenario <name> [--scale 0.004]
  snapshot   export a frozen serving snapshot (.nmss) from a model
             (same data options as train) [--model NMCDR]
             [--checkpoint <file>] --out <file.nmss>
             (supported models: NMCDR, BPR, HeroGraph)
  stream     online serve-while-train loop: simulated event stream, delta
             fine-tuning, snapshot hot-swaps, drift-triggered rollback
             (same data options as train) [--model HeroGraph] --out <dir>
             [--rounds 12] [--events-per-round 64] [--publish-every 2]
             [--shift-at N [--shift-duration 3] [--shift-magnitude 1.0]]
             [--loss-factor 2.0] [--warmup 3] [--cooldown 4] [--hr-drop 0]
             [--max-rollbacks 2] [--ring 4096] [--microbatch 256]
             [--slate 8] [--slope 3.0] [--domain-mix 0.5] [--workers 2]
             [--warm-epochs 0] [--seed N] [--trace-out <file.jsonl>]
             [--profile-out <dump.jsonl>] (per-op profile summed over
             the rounds this process trains)
             [--require-swaps N] [--require-rollbacks N]
             re-running the same --out resumes/verifies bit-identically;
             --require-* make the exit code a CI gate
  serve      serve top-K recommendations over TCP (newline-delimited JSON)
             --snapshot <file.nmss> [--bind 127.0.0.1:7878]
             [--workers N] [--shard-items 256] [--batch-max 8]
             [--cache 4096] [--sample-ms 1000] (telemetry sampler
             interval; 0 disables the flight recorder tick thread)
             [--chaos-seed N] enables fault injection (permille knobs:
             [--chaos-panic 100] [--chaos-stall 100] [--chaos-torn-write 50]
             [--chaos-torn-read 50] [--chaos-reload-fail 100]
             [--chaos-deadline 50])
  chaos      deterministic chaos drill: chaos-enabled server + fixed
             workload (queries, reloads, hostile frames), run twice and
             byte-compared; prints an injection/breaker/degraded report
             [--seed N] [--requests 80] [--snapshot <file.nmss>]
             [--panic 250] [--stall 250] [--torn-write 100]
             [--torn-read 100] [--reload-fail 500] [--deadline-expire 150]
             [--workers 2] [--shard-items 32] [--retries 1]
             [--breaker-threshold 2] [--breaker-cooldown 4]
             [--trace-out <file.jsonl>] [--series-out <file.jsonl>]
             [--sample-every 8] [--series-capacity 64] [--clean]
             [--require-injections N]
             [--require-breaker-opens N] [--require-degraded N]
             --require-* make the exit code a CI gate; --clean zeroes
             every fault rate (the SLO smoke control run); --series-out
             dumps the telemetry flight recorder for obs tail/slo
  query      one-shot client against a running server
             [--addr 127.0.0.1:7878]
             [--op topk|stats|obs|series|trace|shutdown]
             [--user 0] [--domain a] [--k 10] [--n 5] [--window 30]
             --op trace prints the server's slowest-request exemplars
             as a raw schema-v1 trace (pipe to a file for obs flame);
             --op series prints windowed rates/quantiles + SLO budgets
  obs        offline trace tooling for --trace-out files
             report   --trace <file>   self-time profile per span
             validate --trace <file>   strict schema + monotonicity check
             flame    --in <file> --out <flame.svg> [--collapsed <txt>]
                      collapsed-stack fold + SVG flamegraph +
                      critical-path report
             profile  --profile <dump.jsonl> [--trace <file.jsonl>]
                      per-op roofline report from a --profile-out dump:
                      self time, achieved GFLOP/s and GB/s, arithmetic
                      intensity, memory- vs compute-bound class
                      [--compare <old-dump> [--compare-trace <old>]]
                      [--rel-tol 0.5] [--abs-floor-us 200]
                      differential gate: deterministic counters diffed
                      strictly, timings under noise-aware thresholds;
                      exits non-zero on regression (a CI gate)
             tail     --series <file> [--window 20]
                      per-tick rates + latency quantiles from a
                      flight-recorder dump (chaos --series-out)
             slo      --series <file> [--require-alerts N]
                      [--require-clean]
                      burn-rate replay: error-budget table and alert
                      transitions; --require-* gate the exit code
  bench      perf-regression gate over a fixed serve+train suite
             (--record | --compare) [--baseline results/BENCH_baseline.json]
             [--runs 3]   median-of-runs, per-metric relative tolerance
             with an absolute noise floor; --compare exits non-zero on
             regression (wired into scripts/ci.sh)
  check      static analysis: symbolic shape/graph verification over all
             models, workspace invariant lints, schedule-exploring
             concurrency checks
             [--root .] [--allowlist scripts/lint_allowlist.tsv]
             [--skip shape,lint,sched] [--json <report.json>]
             [--fix-allowlist]
  help       this text

TRACING:
  train [--trace-out <file.jsonl>] records per-stage spans (forward/
  backward/optimizer, encoder/intra/inter/complementing), per-epoch
  telemetry events, and companion-loss components as line JSON;
  inspect with `nmcdr obs report --trace <file>`

SCENARIOS: music-movie, cloth-sport, phone-elec, loan-fund
MODELS:    LR BPR NeuMF MMoE PLE CoNet MiNet GA-DTCDR DML HeroGraph PTUPCDR NMCDR"
    );
}

/// Converts the trainer's per-op aggregates plus the frozen alloc
/// counters into the deterministic profile dump and writes it. The
/// measured `*_ns` fields stay out on purpose: the dump must be
/// byte-identical across same-seed runs (timings travel in the trace
/// as `obs.profile.time` events instead).
fn write_profile_dump(
    path: &Path,
    table: &[(&'static str, nm_models::OpAgg)],
    alloc: Option<nm_tensor::alloc::AllocStats>,
) -> Result<(), String> {
    let ops: Vec<nm_obs::OpCounters> = table
        .iter()
        .map(|(kind, a)| nm_obs::OpCounters {
            kind: (*kind).to_string(),
            fwd_calls: a.fwd_calls,
            bwd_calls: a.bwd_calls,
            fwd_flops: a.fwd_flops,
            bwd_flops: a.bwd_flops,
            fwd_bytes: a.fwd_bytes,
            bwd_bytes: a.bwd_bytes,
            alloc_b: a.alloc_b,
            freed_b: a.freed_b,
        })
        .collect();
    let alloc = alloc.map_or(
        nm_obs::AllocSummary {
            allocated_b: 0,
            freed_b: 0,
            peak_b: 0,
        },
        |a| nm_obs::AllocSummary {
            allocated_b: a.allocated_b,
            freed_b: a.freed_b,
            peak_b: a.peak_b,
        },
    );
    if ops.is_empty() {
        return Err(
            "profiler recorded no ops (did this run train anything in this process?)".into(),
        );
    }
    std::fs::write(path, nm_obs::render_dump(&ops, &alloc))
        .map_err(|e| format!("cannot write profile dump '{}': {e}", path.display()))
}

fn profile_from(args: &Args) -> Result<ExpProfile, String> {
    let mut p = ExpProfile::from_env();
    p.scale = args.parse_or("scale", p.scale)?;
    p.dim = args.parse_or("dim", p.dim)?;
    p.epochs = args.parse_or("epochs", p.epochs)?;
    p.lr = args.parse_or("lr", p.lr)?;
    p.seed = args.parse_or("seed", p.seed)?;
    p.eval_negatives = args.parse_or("eval-negatives", p.eval_negatives)?;
    p.match_neighbors = args.parse_or("neighbors", p.match_neighbors)?;
    Ok(p)
}

fn scenario_from(args: &Args) -> Result<Scenario, String> {
    let name = args.required("scenario")?;
    Scenario::parse(name).ok_or_else(|| format!("unknown scenario '{name}'"))
}

/// Loads the dataset either from a scenario generator or from log files.
fn dataset_from(args: &Args, profile: &ExpProfile) -> Result<CdrDataset, String> {
    let data = if let (Some(pa), Some(pb)) = (args.get("domain-a"), args.get("domain-b")) {
        let alignment = args.get("alignment").map(PathBuf::from);
        nm_data::io::load_cdr_dataset("A", Path::new(pa), "B", Path::new(pb), alignment.as_deref())
            .map_err(|e| format!("cannot load interaction logs '{pa}' / '{pb}': {e}"))?
    } else {
        let scenario = scenario_from(args)?;
        let mut cfg = scenario.config(profile.scale);
        cfg.seed ^= profile.seed;
        generate_dataset(&cfg)
    };
    let overlap: f64 = args.parse_or("overlap", 1.0)?;
    let density: f64 = args.parse_or("density", 1.0)?;
    let mut data = data;
    if overlap < 1.0 {
        data = data.with_overlap_ratio(overlap, profile.seed);
    }
    if density < 1.0 {
        data = data.with_density(density, 2, profile.seed);
    }
    Ok(data)
}

fn build_model(
    args: &Args,
    task: Rc<CdrTask>,
    profile: &ExpProfile,
) -> Result<Box<dyn CdrModel>, String> {
    let name = args.get("model").unwrap_or("NMCDR");
    let kind = ModelKind::parse(name).ok_or_else(|| format!("unknown model '{name}'"))?;
    Ok(match kind {
        ModelKind::Nmcdr => Box::new(NmcdrModel::new(
            task,
            nmcdr_config(profile, Ablation::none()),
        )),
        other => other.build(task, profile),
    })
}

pub fn generate(args: &Args) -> Result<(), String> {
    let profile = profile_from(args)?;
    let scenario = scenario_from(args)?;
    let out = PathBuf::from(args.required("out")?);
    std::fs::create_dir_all(&out)
        .map_err(|e| format!("cannot create output directory '{}': {e}", out.display()))?;
    let mut cfg = scenario.config(profile.scale);
    cfg.seed ^= profile.seed;
    let data = generate_dataset(&cfg);
    let (na, nb) = scenario.domains();
    let write_domain = |d: &nm_data::DomainData, name: &str| -> Result<PathBuf, String> {
        let path = out.join(format!("{}.txt", name.to_lowercase()));
        let mut s = String::with_capacity(d.interactions.len() * 12);
        for (ord, &(u, i)) in d.interactions.iter().enumerate() {
            s.push_str(&format!("u{u} i{i} {ord}\n"));
        }
        std::fs::write(&path, s).map_err(|e| format!("cannot write '{}': {e}", path.display()))?;
        Ok(path)
    };
    let pa = write_domain(&data.domain_a, na)?;
    let pb = write_domain(&data.domain_b, nb)?;
    let align_path = out.join("alignment.txt");
    let mut s = String::new();
    for &(a, b) in &data.true_overlap {
        s.push_str(&format!("u{a} u{b}\n"));
    }
    std::fs::write(&align_path, s)
        .map_err(|e| format!("cannot write '{}': {e}", align_path.display()))?;
    println!(
        "wrote {} ({} interactions), {} ({}), {} ({} pairs)",
        pa.display(),
        data.domain_a.interactions.len(),
        pb.display(),
        data.domain_b.interactions.len(),
        align_path.display(),
        data.true_overlap.len()
    );
    Ok(())
}

pub fn train(args: &Args) -> Result<(), String> {
    let profile = profile_from(args)?;
    let data = dataset_from(args, &profile)?;
    let mut tc = task_config(&profile);
    // --early-stop enables a validation split + patience-2 early stopping
    let early_stop = args.flag("early-stop");
    tc.validation = early_stop;
    let task = CdrTask::build(data, tc);
    let mut model = build_model(args, task, &profile)?;
    println!(
        "training {} ({} epochs, dim {}, lr {})",
        model.name(),
        profile.epochs,
        profile.dim,
        profile.lr
    );
    let mut train_cfg = profile.train_config();
    if early_stop {
        train_cfg.early_stop_patience = 2;
    }
    let profile_out = args.get("profile-out").map(PathBuf::from);
    train_cfg.profile = profile_out.is_some();
    let ft = FtConfig {
        checkpoint: args.get("checkpoint").map(PathBuf::from),
        checkpoint_every: args.parse_or("checkpoint-every", 1)?,
        resume: args.flag("resume"),
        max_rollbacks: args.parse_or("max-rollbacks", 3)?,
        ..Default::default()
    };
    if ft.resume && ft.checkpoint.is_none() {
        return Err(
            "--resume needs --checkpoint <file> pointing at the checkpoint to resume from".into(),
        );
    }
    let trace_out = args.get("trace-out").map(PathBuf::from);
    if let Some(path) = &trace_out {
        nm_obs::trace::init_file(path)
            .map_err(|e| format!("cannot open trace sink '{}': {e}", path.display()))?;
    }
    let trained = train_joint_ft(&mut *model, &train_cfg, &ft);
    if trace_out.is_some() {
        nm_obs::trace::shutdown();
    }
    let stats = trained.map_err(|e| format!("training {} failed: {e}", model.name()))?;
    if let Some(epoch) = stats.resumed_from {
        println!("  resumed from checkpoint at epoch {epoch}");
    }
    for log in &stats.logs {
        println!("  epoch {}: mean loss {:.4}", log.epoch, log.mean_loss);
    }
    if stats.rollbacks > 0 {
        println!(
            "  recovered from divergence {} time(s) via rollback",
            stats.rollbacks
        );
    }
    println!(
        "domain A: HR@10 {:>6.2}%  NDCG@10 {:>6.2}%  AUC {:.3}  ({} users)",
        stats.final_a.hr, stats.final_a.ndcg, stats.final_a.auc, stats.final_a.n_users
    );
    println!(
        "domain B: HR@10 {:>6.2}%  NDCG@10 {:>6.2}%  AUC {:.3}  ({} users)",
        stats.final_b.hr, stats.final_b.ndcg, stats.final_b.auc, stats.final_b.n_users
    );
    println!(
        "{} parameters, {:.4}s/step",
        stats.param_count, stats.secs_per_step
    );
    if let Some(path) = args.get("checkpoint") {
        println!("checkpoint saved to {path}");
    }
    if let Some(path) = &trace_out {
        println!(
            "trace written to {} (inspect with `nmcdr obs report --trace {}`)",
            path.display(),
            path.display()
        );
    }
    if let Some(path) = &profile_out {
        write_profile_dump(path, stats.profile.as_deref().unwrap_or(&[]), stats.alloc)?;
        match &trace_out {
            Some(t) => println!(
                "profile dump written to {} (inspect with `nmcdr obs profile --profile {} \
                 --trace {}`)",
                path.display(),
                path.display(),
                t.display()
            ),
            None => println!(
                "profile dump written to {} (inspect with `nmcdr obs profile --profile {}`; \
                 add --trace-out for measured self-times)",
                path.display(),
                path.display()
            ),
        }
    }
    Ok(())
}

pub fn evaluate(args: &Args) -> Result<(), String> {
    let profile = profile_from(args)?;
    let data = dataset_from(args, &profile)?;
    let task = CdrTask::build(data, task_config(&profile));
    let mut model = build_model(args, task, &profile)?;
    let ckpt = args.required("checkpoint")?;
    nm_nn::checkpoint::load_from_file(&model.params(), Path::new(ckpt)).map_err(|e| {
        format!(
            "cannot load checkpoint '{ckpt}' for {}: {e} \
             (was it written by 'train --checkpoint' with the same --model/--dim?)",
            model.name()
        )
    })?;
    let (a, b) = nm_models::train::evaluate_model(&mut *model, 10);
    println!(
        "domain A: HR@10 {:>6.2}%  NDCG@10 {:>6.2}%  AUC {:.3}  ({} users)",
        a.hr, a.ndcg, a.auc, a.n_users
    );
    println!(
        "domain B: HR@10 {:>6.2}%  NDCG@10 {:>6.2}%  AUC {:.3}  ({} users)",
        b.hr, b.ndcg, b.auc, b.n_users
    );
    Ok(())
}

pub fn stats(args: &Args) -> Result<(), String> {
    let profile = profile_from(args)?;
    let scenario = scenario_from(args)?;
    let mut cfg = scenario.config(profile.scale);
    cfg.seed ^= profile.seed;
    let data = generate_dataset(&cfg);
    for d in [&data.domain_a, &data.domain_b] {
        let s = d.stats();
        println!(
            "{:<8} {:>7} users {:>7} items {:>9} ratings  density {:.3}%  avg item deg {:.2}",
            s.name,
            s.users,
            s.items,
            s.ratings,
            s.density * 100.0,
            d.avg_item_interactions()
        );
    }
    println!("{} aligned user pairs", data.true_overlap.len());
    Ok(())
}

fn task_config(profile: &ExpProfile) -> TaskConfig {
    profile.task_config()
}

/// Builds a serving snapshot: rebuild the model on the same data/seed,
/// optionally load a trained checkpoint, then freeze the eval tables.
pub fn snapshot(args: &Args) -> Result<(), String> {
    use nm_nn::Module;
    use nm_serve::FrozenModel;
    let profile = profile_from(args)?;
    let data = dataset_from(args, &profile)?;
    let task = CdrTask::build(data, task_config(&profile));
    let out = PathBuf::from(args.required("out")?);
    let name = args.get("model").unwrap_or("NMCDR");
    let kind = ModelKind::parse(name).ok_or_else(|| format!("unknown model '{name}'"))?;
    let load = |params: &[&nm_nn::Param]| -> Result<(), String> {
        if let Some(path) = args.get("checkpoint") {
            nm_nn::checkpoint::load_from_file(params, Path::new(path)).map_err(|e| {
                format!(
                    "cannot load checkpoint '{path}': {e} \
                     (must match the --model/--dim used for training)"
                )
            })?;
        }
        Ok(())
    };
    let snap = match kind {
        ModelKind::Nmcdr => {
            let mut m = NmcdrModel::new(task, nmcdr_config(&profile, Ablation::none()));
            load(&m.params())?;
            m.export_frozen()
        }
        ModelKind::Bpr => {
            let mut m = nm_models::BprModel::new(task, profile.dim, profile.seed);
            load(&m.params())?;
            m.export_frozen()
        }
        ModelKind::HeroGraph => {
            let mut m = nm_models::HeroGraphModel::new(task, profile.dim, profile.seed);
            load(&m.params())?;
            m.export_frozen()
        }
        other => {
            return Err(format!(
                "model '{}' does not support snapshot export (supported: NMCDR, BPR, HeroGraph)",
                other.name()
            ))
        }
    };
    snap.save_to_file(&out)
        .map_err(|e| format!("cannot write snapshot '{}': {e}", out.display()))?;
    println!(
        "snapshot of {} saved to {} ({}+{} users, {}+{} items)",
        snap.model,
        out.display(),
        snap.n_users(0),
        snap.n_users(1),
        snap.n_items(0),
        snap.n_items(1)
    );
    Ok(())
}

/// `nmcdr stream` — the online serve-while-train loop: replay a
/// simulated interaction stream against the serving snapshot, delta
/// fine-tune on each round, hot-swap snapshots on cadence, and roll
/// back automatically when the drift monitor trips. All artifacts land
/// in `--out`; re-running with the same arguments resumes (or verifies)
/// the directory bit-identically.
pub fn stream(args: &Args) -> Result<(), String> {
    use nm_serve::FrozenModel;
    use nm_stream::{DriftConfig, ShiftSchedule, SourceConfig, StreamConfig};
    let profile = profile_from(args)?;
    let data = dataset_from(args, &profile)?;
    let task = CdrTask::build(data, task_config(&profile));
    let out = PathBuf::from(args.required("out")?);

    let shift = match args.get("shift-at") {
        Some(at) => Some(ShiftSchedule {
            at_round: at
                .parse()
                .map_err(|e| format!("invalid --shift-at '{at}': {e}"))?,
            duration: args.parse_or("shift-duration", 3)?,
            magnitude: args.parse_or("shift-magnitude", 1.0)?,
        }),
        None => None,
    };
    let src_defaults = SourceConfig::default();
    let drift_defaults = DriftConfig::default();
    let cfg = StreamConfig {
        rounds: args.parse_or("rounds", 12)?,
        source: SourceConfig {
            seed: profile.seed,
            events_per_round: args.parse_or("events-per-round", src_defaults.events_per_round)?,
            slate_size: args.parse_or("slate", src_defaults.slate_size)?,
            slope: args.parse_or("slope", src_defaults.slope)?,
            domain_mix: args.parse_or("domain-mix", src_defaults.domain_mix)?,
            shift,
            ..src_defaults
        },
        ring_capacity: args.parse_or("ring", 4096)?,
        microbatch_max: args.parse_or("microbatch", 256)?,
        publish_every: args.parse_or("publish-every", 2)?,
        drift: DriftConfig {
            loss_factor: args.parse_or("loss-factor", drift_defaults.loss_factor)?,
            warmup_rounds: args.parse_or("warmup", drift_defaults.warmup_rounds)?,
            cooldown_rounds: args.parse_or("cooldown", drift_defaults.cooldown_rounds)?,
            hr_drop: args.parse_or("hr-drop", drift_defaults.hr_drop)?,
            max_rollbacks: args.parse_or("max-rollbacks", drift_defaults.max_rollbacks)?,
            ..drift_defaults
        },
        engine: nm_serve::EngineConfig {
            n_workers: args.parse_or("workers", 2)?,
            ..Default::default()
        },
        ..StreamConfig::new(out)
    };
    let warm: usize = args.parse_or("warm-epochs", 0)?;
    let mut train_cfg = profile.train_config();
    let profile_out = args.get("profile-out").map(PathBuf::from);
    // The trainer resets its table on every call, so the dump covers
    // exactly the streaming rounds (a --warm-epochs call's drains are
    // returned to drive() and discarded, not accumulated).
    train_cfg.profile = profile_out.is_some();

    let trace_out = args.get("trace-out").map(PathBuf::from);
    if let Some(path) = &trace_out {
        nm_obs::trace::init_file(path)
            .map_err(|e| format!("cannot open trace sink '{}': {e}", path.display()))?;
    }
    fn drive<M: CdrModel + FrozenModel>(
        mut model: M,
        tc: &nm_models::TrainConfig,
        warm: usize,
        cfg: &nm_stream::StreamConfig,
    ) -> Result<nm_stream::StreamReport, String> {
        if warm > 0 {
            let mut wtc = tc.clone();
            wtc.epochs = warm;
            nm_models::train_joint(&mut model, &wtc)
                .map_err(|e| format!("warm-up training failed: {e}"))?;
        }
        nm_stream::run_stream(&mut model, tc, cfg).map_err(|e| format!("stream run failed: {e}"))
    }
    let name = args.get("model").unwrap_or("HeroGraph");
    let kind = ModelKind::parse(name).ok_or_else(|| format!("unknown model '{name}'"))?;
    let report = match kind {
        ModelKind::Nmcdr => drive(
            NmcdrModel::new(task, nmcdr_config(&profile, Ablation::none())),
            &train_cfg,
            warm,
            &cfg,
        ),
        ModelKind::Bpr => drive(
            nm_models::BprModel::new(task, profile.dim, profile.seed),
            &train_cfg,
            warm,
            &cfg,
        ),
        ModelKind::HeroGraph => drive(
            nm_models::HeroGraphModel::new(task, profile.dim, profile.seed),
            &train_cfg,
            warm,
            &cfg,
        ),
        other => Err(format!(
            "model '{}' does not support streaming (needs snapshot export; \
             supported: NMCDR, BPR, HeroGraph)",
            other.name()
        )),
    };
    if trace_out.is_some() {
        nm_obs::trace::shutdown();
    }
    let report = report?;

    for d in &report.decisions {
        println!(
            "  iter {:>3} round {:>3} {:<8} {:<8} loss {:.4} hr {:>6.2}%",
            d.iter,
            d.round,
            d.verdict.as_str(),
            d.action.as_str(),
            d.mean_loss,
            d.hr
        );
    }
    let (pushed, dropped, drained) = report.ring_counters;
    println!(
        "stream complete: {} rounds trained, {} events logged \
         (ring: {pushed} pushed, {dropped} dropped, {drained} drained)",
        report.rounds_trained, report.events_logged
    );
    println!(
        "  {} publishes, {} hot-swaps, {} rollbacks, {} parity checks{}",
        report.publishes,
        report.swaps,
        report.rollbacks,
        report.parity_checks,
        if report.halted {
            " — HALTED (rollback budget exhausted)"
        } else {
            ""
        }
    );
    if let Some(path) = &trace_out {
        println!(
            "trace written to {} (inspect with `nmcdr obs validate --trace {}`)",
            path.display(),
            path.display()
        );
    }
    if let Some(path) = &profile_out {
        write_profile_dump(path, report.profile.as_deref().unwrap_or(&[]), report.alloc)?;
        println!(
            "profile dump written to {} (inspect with `nmcdr obs profile --profile {}`)",
            path.display(),
            path.display()
        );
    }
    let want_swaps: u64 = args.parse_or("require-swaps", 0)?;
    if report.swaps < want_swaps {
        return Err(format!(
            "only {} hot-swaps, --require-swaps {want_swaps} not met",
            report.swaps
        ));
    }
    let want_rollbacks: u64 = args.parse_or("require-rollbacks", 0)?;
    if report.rollbacks < want_rollbacks {
        return Err(format!(
            "only {} rollbacks, --require-rollbacks {want_rollbacks} not met",
            report.rollbacks
        ));
    }
    Ok(())
}

/// Serves a snapshot over TCP until a `shutdown` request arrives.
pub fn serve(args: &Args) -> Result<(), String> {
    use std::sync::Arc;
    let path = args.required("snapshot")?;
    let snap = nm_serve::Snapshot::load_from_file(Path::new(path)).map_err(|e| {
        format!("cannot load snapshot '{path}': {e} (export one with 'nmcdr snapshot --out ...')")
    })?;
    let model = snap.model.clone();
    // Fault injection is off unless a chaos seed is given; the knob
    // defaults are mild enough for interactive poking.
    let chaos = match args.get("chaos-seed") {
        Some(_) => Some(nm_serve::ChaosConfig {
            seed: args.parse_or("chaos-seed", 0)?,
            worker_panic_permille: args.parse_or("chaos-panic", 100)?,
            shard_stall_permille: args.parse_or("chaos-stall", 100)?,
            torn_write_permille: args.parse_or("chaos-torn-write", 50)?,
            torn_read_permille: args.parse_or("chaos-torn-read", 50)?,
            reload_fail_permille: args.parse_or("chaos-reload-fail", 100)?,
            deadline_expire_permille: args.parse_or("chaos-deadline", 50)?,
        }),
        None => None,
    };
    let cfg = nm_serve::EngineConfig {
        n_workers: args.parse_or("workers", nm_serve::EngineConfig::default().n_workers)?,
        shard_items: args.parse_or("shard-items", 256)?,
        batch_max: args.parse_or("batch-max", 8)?,
        cache_capacity: args.parse_or("cache", 4096)?,
        chaos,
        ..Default::default()
    };
    let n_workers = cfg.n_workers;
    if cfg.chaos.is_some() {
        println!("WARNING: chaos fault injection is ENABLED on this server");
    }
    let engine =
        Arc::new(nm_serve::Engine::new(snap, cfg).map_err(|e| format!("invalid snapshot: {e}"))?);
    let bind = args.get("bind").unwrap_or("127.0.0.1:7878");
    // Production telemetry tick source: a clock-driven sampler (default
    // 1s) keeps the flight recorder and SLO burn rates live for
    // `nmcdr query --op series`; --sample-ms 0 disables it.
    let sample_ms: u64 = args.parse_or("sample-ms", 1000)?;
    let server_cfg = nm_serve::ServerConfig {
        sample_interval: (sample_ms > 0).then(|| std::time::Duration::from_millis(sample_ms)),
        ..Default::default()
    };
    let mut server = nm_serve::Server::start(engine, bind, server_cfg)
        .map_err(|e| format!("cannot bind '{bind}': {e} (is the port already in use?)"))?;
    println!(
        "serving {model} on {} ({n_workers} workers); send {{\"op\":\"shutdown\"}} to stop",
        server.local_addr()
    );
    server.wait();
    println!("server stopped");
    Ok(())
}

/// One-shot client: send a single request line and print the response.
pub fn query(args: &Args) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let op = args.get("op").unwrap_or("topk");
    let line = match op {
        "topk" => {
            let user: u32 = args.parse_or("user", 0)?;
            let k: usize = args.parse_or("k", 10)?;
            let domain = args.get("domain").unwrap_or("a");
            format!(r#"{{"op":"topk","user":{user},"domain":"{domain}","k":{k}}}"#)
        }
        "stats" => r#"{"op":"stats"}"#.to_string(),
        "obs" => r#"{"op":"obs"}"#.to_string(),
        "series" => {
            let window: usize = args.parse_or("window", 0)?;
            if window > 0 {
                format!(r#"{{"op":"series","window":{window}}}"#)
            } else {
                r#"{"op":"series"}"#.to_string()
            }
        }
        "trace" => {
            let n: usize = args.parse_or("n", 0)?;
            if n > 0 {
                format!(r#"{{"op":"trace","n":{n}}}"#)
            } else {
                r#"{"op":"trace"}"#.to_string()
            }
        }
        "shutdown" => r#"{"op":"shutdown"}"#.to_string(),
        other => {
            return Err(format!(
                "unknown op '{other}' (topk, stats, obs, series, trace, shutdown)"
            ))
        }
    };
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to '{addr}': {e} (is 'nmcdr serve' running?)"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|_| writer.flush())
        .map_err(|e| e.to_string())?;
    let mut resp = String::new();
    BufReader::new(stream)
        .read_line(&mut resp)
        .map_err(|e| e.to_string())?;
    if op == "trace" {
        // Print the embedded trace document raw, so the output can be
        // piped straight into a file and fed to `obs flame`/`validate`.
        let v = nm_serve::Json::parse(resp.trim())
            .map_err(|e| format!("malformed server response: {e}"))?;
        if v.get("ok").and_then(nm_serve::Json::as_bool) != Some(true) {
            return Err(format!("server error: {}", resp.trim_end()));
        }
        let text = v
            .get("trace")
            .and_then(nm_serve::Json::as_str)
            .ok_or("server response missing 'trace' field")?;
        print!("{text}");
        return Ok(());
    }
    println!("{}", resp.trim_end());
    Ok(())
}

/// `nmcdr bench (--record | --compare)` — the perf-regression gate;
/// see [`nm_bench::regress`] for the metric suite and thresholds.
pub fn bench(args: &Args) -> Result<(), String> {
    use nm_bench::regress;
    let runs: usize = args.parse_or("runs", 3)?;
    let baseline_path = PathBuf::from(
        args.get("baseline")
            .unwrap_or("results/BENCH_baseline.json"),
    );
    let record = args.flag("record");
    let compare = args.flag("compare");
    if record == compare {
        return Err("pass exactly one of --record or --compare".into());
    }
    println!("measuring perf suite ({runs} run(s), median per metric)…");
    let current = regress::measure(runs)?;
    for def in regress::METRICS {
        if let Some(v) = current.get(def.name) {
            println!("  {:<22} {v:>12.1}{}", def.name, def.unit);
        }
    }
    regress::append_trajectory(&current, if record { "record" } else { "compare" });
    if record {
        regress::write_baseline(&baseline_path, &current)
            .map_err(|e| format!("cannot write baseline '{}': {e}", baseline_path.display()))?;
        println!("baseline written to {}", baseline_path.display());
        return Ok(());
    }
    let baseline = regress::read_baseline(&baseline_path)?;
    let verdicts = regress::compare(&current, &baseline);
    print!("{}", regress::render_report(&verdicts));
    if regress::any_regression(&verdicts) {
        Err(format!(
            "performance regression against {}",
            baseline_path.display()
        ))
    } else {
        println!("no regression against {}", baseline_path.display());
        Ok(())
    }
}

/// `nmcdr obs <report|validate|flame|tail|slo|profile>` — see
/// [`crate::obs`].
pub fn obs(action: &str, args: &Args) -> Result<(), String> {
    crate::obs::run(action, args)
}
