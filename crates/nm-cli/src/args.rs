//! Dependency-free `--key value` argument parsing.

use std::collections::HashMap;

/// Parsed `--key value` arguments (flags without values store `"true"`).
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses a `--key value ...` list. A `--key` followed by another
    /// `--key` (or end of input) is treated as a boolean flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let k = &argv[i];
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("expected --key, got '{k}'"));
            };
            if key.is_empty() {
                return Err("empty option name".into());
            }
            let next = argv.get(i + 1);
            match next {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    values.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            }
        }
        Ok(Args { values })
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Optional parsed value with default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{key}: '{v}'")),
        }
    }

    pub fn flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&argv(&["--model", "NMCDR", "--verbose", "--scale", "0.01"])).unwrap();
        assert_eq!(a.get("model"), Some("NMCDR"));
        assert!(a.flag("verbose"));
        assert_eq!(a.parse_or::<f64>("scale", 1.0).unwrap(), 0.01);
    }

    #[test]
    fn missing_required_is_error() {
        let a = Args::parse(&argv(&["--x", "1"])).unwrap();
        assert!(a.required("model").is_err());
        assert!(a.required("x").is_ok());
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&argv(&["train"])).is_err());
    }

    #[test]
    fn bad_parse_reported() {
        let a = Args::parse(&argv(&["--epochs", "many"])).unwrap();
        assert!(a.parse_or::<usize>("epochs", 4).is_err());
    }

    #[test]
    fn default_applies_when_absent() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert_eq!(a.parse_or::<usize>("epochs", 7).unwrap(), 7);
        assert!(!a.flag("verbose"));
    }
}
