//! `nmcdr chaos` — a deterministic chaos drill against a live server.
//!
//! Builds (or loads) a serving snapshot, starts a server with every
//! fault class enabled, and drives a fixed sequential workload that
//! mixes top-K queries, snapshot reloads, and hostile frames — then
//! does it all a second time and byte-compares the two transcripts.
//! Same seed ⇒ same fault schedule ⇒ same responses: a failure here
//! means either a nondeterministic fault path or an unabsorbed fault.
//!
//! `--require-injections/--require-breaker-opens/--require-degraded`
//! turn the printed report into a CI gate (non-zero exit when unmet),
//! and `--trace-out` captures the schema-v1 trace (`chaos.inject`,
//! `serve.restart`, breaker transitions) for `nmcdr obs validate`.

use crate::args::Args;
use nm_serve::{
    BreakerConfig, ChaosConfig, DomainSnapshot, Engine, EngineConfig, HeadKind, Json,
    ResilienceConfig, Server, ServerConfig, Snapshot,
};
use nm_tensor::{Tensor, TensorRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Counters whose values depend on thread scheduling (or wall clock)
/// rather than the fault schedule alone; excluded from the determinism
/// comparison but still shown in the report.
const SCHED_DEPENDENT: [&str; 4] = [
    "serve.worker.restarts",
    "serve.worker.quarantined",
    "serve.accept.restarts",
    "obs.self_us",
];

struct Drill {
    transcript: Vec<String>,
    counters: Vec<(String, u64)>,
    /// Line-JSON flight-recorder dump (see `Telemetry::dump`).
    series: String,
    /// SLO alert fire/resolve transition log.
    slo_log: String,
}

/// The drill's burn-rate objective: degraded responses over requests.
/// Error ratio is deliberately NOT an objective here — the workload's
/// hostile frames produce errors in the clean control run too, and the
/// clean run must stay alert-free for the CI gate to mean anything.
fn chaos_slos() -> Vec<nm_obs::SloSpec> {
    vec![nm_obs::SloSpec {
        name: "chaos-degraded-ratio".into(),
        objective: nm_obs::Objective::CounterRatio {
            bad: vec![
                "serve.degraded.partial".into(),
                "serve.degraded.stale".into(),
                "serve.degraded.unavailable".into(),
                "serve.deadline.shed".into(),
            ],
            total: "serve.requests".into(),
        },
        target: 0.005,
        fast_window: 4,
        slow_window: 16,
        burn_threshold: 2.0,
        min_events: 8,
    }]
}

pub fn chaos(args: &Args) -> Result<(), String> {
    let seed: u64 = args.parse_or("seed", 0xC4A05)?;
    let requests: usize = args.parse_or("requests", 80)?;
    if requests < 8 {
        return Err("--requests must be at least 8".into());
    }
    // --clean runs the identical workload with every fault rate zeroed:
    // the control arm of the SLO smoke test (burn-rate alerts must NOT
    // fire without faults).
    let clean = args.flag("clean");
    let cfg = ChaosConfig {
        seed,
        worker_panic_permille: if clean {
            0
        } else {
            args.parse_or("panic", 250)?
        },
        shard_stall_permille: if clean {
            0
        } else {
            args.parse_or("stall", 250)?
        },
        torn_write_permille: if clean {
            0
        } else {
            args.parse_or("torn-write", 100)?
        },
        torn_read_permille: if clean {
            0
        } else {
            args.parse_or("torn-read", 100)?
        },
        reload_fail_permille: if clean {
            0
        } else {
            args.parse_or("reload-fail", 500)?
        },
        deadline_expire_permille: if clean {
            0
        } else {
            args.parse_or("deadline-expire", 150)?
        },
    };
    if !clean && !cfg.enabled() {
        return Err("all fault rates are zero; nothing to drill (did you mean --clean?)".into());
    }

    // Injected worker panics go through the normal panic machinery
    // (that is the point), but the default hook would print a backtrace
    // per firing; silence exactly those and delegate everything else.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.starts_with("chaos: injected"));
        if !injected {
            prev_hook(info);
        }
    }));

    let trace_out = args.get("trace-out").map(std::path::PathBuf::from);
    if let Some(path) = &trace_out {
        nm_obs::trace::init_file(path)
            .map_err(|e| format!("cannot open trace sink '{}': {e}", path.display()))?;
    }

    // Serving snapshot: user-provided or synthetic; the reload target is
    // a second synthetic snapshot in a scratch dir (or the same file
    // again when the user brought their own).
    let dir = std::env::temp_dir().join(format!("nmcdr-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("scratch dir: {e}"))?;
    let (snap, reload_path) = match args.get("snapshot") {
        Some(path) => {
            let s = Snapshot::load_from_file(Path::new(path))
                .map_err(|e| format!("cannot load snapshot '{path}': {e}"))?;
            (s, std::path::PathBuf::from(path))
        }
        None => {
            let p = dir.join("reload.nmss");
            synthetic_snapshot(seed ^ 1)
                .save_to_file(&p)
                .map_err(|e| format!("writing reload snapshot: {e}"))?;
            (synthetic_snapshot(seed), p)
        }
    };

    println!(
        "chaos drill: seed {seed:#x}, {requests} requests, rates (permille): \
         panic {} stall {} torn-write {} torn-read {} reload-fail {} deadline {}",
        cfg.worker_panic_permille,
        cfg.shard_stall_permille,
        cfg.torn_write_permille,
        cfg.torn_read_permille,
        cfg.reload_fail_permille,
        cfg.deadline_expire_permille,
    );

    let run = |tag: &str| -> Result<Drill, String> {
        let d = drill(&snap, &reload_path, cfg.clone(), requests, args)?;
        println!("  run {tag}: {} responses recorded", d.transcript.len());
        Ok(d)
    };
    let first = run("1")?;
    let second = run("2")?;
    if trace_out.is_some() {
        nm_obs::trace::shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();

    // Determinism: byte-identical transcripts, identical counters.
    for (i, (a, b)) in first.transcript.iter().zip(&second.transcript).enumerate() {
        if a != b {
            return Err(format!(
                "NONDETERMINISTIC: request {i} diverged across same-seed runs\n  run 1: {a}\n  run 2: {b}"
            ));
        }
    }
    for ((name, a), (_, b)) in first.counters.iter().zip(&second.counters) {
        if a != b {
            return Err(format!(
                "NONDETERMINISTIC: counter {name} diverged across same-seed runs ({a} vs {b})"
            ));
        }
    }
    if first.series != second.series {
        return Err(
            "NONDETERMINISTIC: flight-recorder dumps diverged across same-seed runs".into(),
        );
    }
    if first.slo_log != second.slo_log {
        return Err(format!(
            "NONDETERMINISTIC: SLO decisions diverged across same-seed runs\n  run 1:\n{}  run 2:\n{}",
            first.slo_log, second.slo_log
        ));
    }
    println!(
        "deterministic replay: PASS (transcripts byte-identical, counters equal, \
         flight-recorder dump and SLO decisions byte-identical)"
    );

    let get = |name: &str| {
        first
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let injected = get("chaos.injected.total");
    let breaker_opens = get("serve.breaker.opens");
    let degraded = get("serve.degraded.partial")
        + get("serve.degraded.stale")
        + get("serve.degraded.unavailable");
    println!("injections: {injected} total");
    for class in [
        "worker_panic",
        "shard_stall",
        "torn_write",
        "torn_read",
        "reload_fail",
        "deadline_expire",
    ] {
        println!(
            "  {:<16} {}",
            class,
            get(&format!("chaos.injected.{class}"))
        );
    }
    println!(
        "resilience: {} retried, {} shard failures, breaker {} open / {} half-open / {} closed / {} short-circuited",
        get("serve.shard.retried"),
        get("serve.shard.failures"),
        breaker_opens,
        get("serve.breaker.half_opens"),
        get("serve.breaker.closes"),
        get("serve.breaker.short_circuits"),
    );
    println!(
        "degraded: {degraded} ({} partial, {} stale, {} unavailable); reloads {} ok / {} rejected",
        get("serve.degraded.partial"),
        get("serve.degraded.stale"),
        get("serve.degraded.unavailable"),
        get("serve.reload.ok"),
        get("serve.reload.failed"),
    );
    println!(
        "wire: {} torn, {} malformed, {} oversized, {} timeouts",
        get("serve.proto.torn"),
        get("serve.proto.malformed"),
        get("serve.proto.oversized"),
        get("serve.proto.timeout"),
    );
    let ticks = first.series.lines().count().saturating_sub(1);
    if first.slo_log.is_empty() {
        println!("slo: {ticks} ticks recorded, no alert transitions");
    } else {
        println!("slo: {ticks} ticks recorded, alert transitions:");
        for line in first.slo_log.lines() {
            println!("  {line}");
        }
    }
    if let Some(path) = args.get("series-out") {
        std::fs::write(path, &first.series)
            .map_err(|e| format!("cannot write series '{path}': {e}"))?;
        println!(
            "flight recorder written to {path} (inspect with `nmcdr obs tail --series {path}` \
             and `nmcdr obs slo --series {path}`)"
        );
    }
    if let Some(path) = &trace_out {
        println!(
            "trace written to {} (inspect with `nmcdr obs validate --trace {}`)",
            path.display(),
            path.display()
        );
    }

    for (flag, value, label) in [
        ("require-injections", injected, "injections"),
        ("require-breaker-opens", breaker_opens, "breaker opens"),
        ("require-degraded", degraded, "degraded responses"),
    ] {
        let want: u64 = args.parse_or(flag, 0)?;
        if value < want {
            return Err(format!("only {value} {label}, --{flag} {want} not met"));
        }
    }
    Ok(())
}

fn synthetic_snapshot(seed: u64) -> Snapshot {
    let mut rng = TensorRng::seed_from(seed);
    let mk = |rng: &mut TensorRng| DomainSnapshot {
        users: Tensor::randn(32, 8, 1.0, rng),
        items: Tensor::randn(120, 8, 1.0, rng),
        head: HeadKind::Dot,
    };
    Snapshot {
        model: "chaos-drill".into(),
        domains: [mk(&mut rng), mk(&mut rng)],
    }
}

/// One pass of the drill workload against a fresh engine + server.
fn drill(
    snap: &Snapshot,
    reload_path: &Path,
    chaos: ChaosConfig,
    requests: usize,
    args: &Args,
) -> Result<Drill, String> {
    // The flight recorder ticks on the request ordinal, so the dump is
    // part of the determinism contract; wall-clock and scheduling-
    // dependent metrics are excluded from the recorded series.
    let mut exclude: Vec<String> = vec!["serve.latency_us".into()];
    exclude.extend(SCHED_DEPENDENT.iter().map(|s| s.to_string()));
    let engine = Arc::new(
        Engine::new(
            snap.clone(),
            EngineConfig {
                n_workers: args.parse_or("workers", 2)?,
                shard_items: args.parse_or("shard-items", 32)?,
                resilience: ResilienceConfig {
                    shard_retries: args.parse_or("retries", 1)?,
                    breaker: BreakerConfig {
                        failure_threshold: args.parse_or("breaker-threshold", 2)?,
                        cooldown_passes: args.parse_or("breaker-cooldown", 4)?,
                    },
                    ..Default::default()
                },
                chaos: chaos.enabled().then_some(chaos),
                telemetry: nm_obs::TelemetryConfig {
                    capacity: args.parse_or("series-capacity", 64)?,
                    exclude,
                    slos: chaos_slos(),
                },
                ..Default::default()
            },
        )
        .map_err(|e| format!("invalid snapshot: {e}"))?,
    );
    let mut server = Server::start(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            // Forced expiry is the only deadline path the drill wants;
            // a generous wall-clock deadline keeps slow machines from
            // adding schedule-dependent "late" degrades.
            deadline: Duration::from_secs(30),
            max_frame_bytes: 4096,
            sample_every: args.parse_or("sample-every", 8)?,
            ..Default::default()
        },
    )
    .map_err(|e| format!("cannot start drill server: {e}"))?;
    let addr = server.local_addr();

    let connect = || -> Result<(TcpStream, BufReader<TcpStream>), String> {
        let s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| e.to_string())?;
        let w = s.try_clone().map_err(|e| e.to_string())?;
        Ok((w, BufReader::new(s)))
    };
    let (mut writer, mut reader) = connect()?;

    // Reloads at the quarter marks; hostile frames on fixed residues;
    // top-K queries everywhere else. Purely a function of (i, requests).
    let reload_at = [requests / 4, requests / 2, 3 * requests / 4];
    let mut transcript = Vec::with_capacity(requests);
    for i in 0..requests {
        let line = if reload_at.contains(&i) {
            format!(
                "{{\"op\":\"reload\",\"path\":\"{}\"}}\n",
                reload_path.display()
            )
        } else if i % 13 == 7 {
            // type-confused frame: parses as JSON, fails as a request
            "{\"op\":\"topk\",\"user\":\"NaN\",\"domain\":3}\n".to_string()
        } else if i % 17 == 11 {
            // oversized frame: past max_frame_bytes, connection closes
            let mut f = "x".repeat(5000);
            f.push('\n');
            f
        } else {
            let user = (i % 16) as u32;
            let domain = if i % 2 == 0 { "a" } else { "b" };
            format!("{{\"op\":\"topk\",\"user\":{user},\"domain\":\"{domain}\",\"k\":8}}\n")
        };
        let oversized = i % 17 == 11 && !reload_at.contains(&i) && i % 13 != 7;
        writer
            .write_all(line.as_bytes())
            .and_then(|_| writer.flush())
            .map_err(|e| format!("request {i}: send failed: {e}"))?;
        let mut resp = String::new();
        let n = reader
            .read_line(&mut resp)
            .map_err(|e| format!("request {i}: no reply within 10s: {e}"))?;
        if n == 0 {
            return Err(format!("request {i}: connection closed with no reply"));
        }
        if resp.ends_with('\n') {
            let v = Json::parse(resp.trim())
                .map_err(|e| format!("request {i}: corrupt reply {resp:?}: {e}"))?;
            if v.get("ok").and_then(Json::as_bool).is_none() {
                return Err(format!("request {i}: reply without ok field: {resp}"));
            }
            transcript.push(resp.trim().to_string());
            if oversized {
                // The server closed this connection after the error.
                let (w, r) = connect()?;
                writer = w;
                reader = r;
            }
        } else {
            // Torn write: deterministic cut, then the server closed the
            // connection; the tear length is part of the transcript.
            transcript.push(format!("<torn:{n}>"));
            let (w, r) = connect()?;
            writer = w;
            reader = r;
        }
    }

    let snapshot = engine.stats().registry().snapshot();
    let counters = snapshot
        .counters
        .into_iter()
        .filter(|(name, _)| !SCHED_DEPENDENT.contains(&name.as_str()))
        .collect();
    let series = engine.telemetry().dump();
    let slo_log = engine.telemetry().render_transitions();
    server.stop();
    Ok(Drill {
        transcript,
        counters,
        series,
        slo_log,
    })
}
