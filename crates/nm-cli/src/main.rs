//! `nmcdr` — command-line interface to the NMCDR reproduction.
//!
//! ```text
//! nmcdr generate --scenario cloth-sport --scale 0.004 --out data/
//! nmcdr train    --scenario cloth-sport --model NMCDR --overlap 0.1 \
//!                --checkpoint model.nmck
//! nmcdr train    --domain-a data/cloth.txt --domain-b data/sport.txt \
//!                --model NMCDR
//! nmcdr evaluate --scenario cloth-sport --model NMCDR --checkpoint model.nmck
//! nmcdr stats    --scenario loan-fund
//! nmcdr snapshot --scenario cloth-sport --model NMCDR \
//!                --checkpoint model.nmck --out model.nmss
//! nmcdr stream   --scenario cloth-sport --model HeroGraph --out results/stream \
//!                --rounds 12 --shift-at 6 --require-swaps 2 --require-rollbacks 1
//! nmcdr serve    --snapshot model.nmss --bind 127.0.0.1:7878
//! nmcdr chaos    --seed 7 --requests 120 --require-breaker-opens 1 \
//!                --require-degraded 1 --trace-out chaos.jsonl \
//!                --series-out chaos-series.jsonl
//! nmcdr query    --addr 127.0.0.1:7878 --op topk --user 3 --domain a --k 10
//! nmcdr train    --scenario cloth-sport --trace-out results/trace/run.jsonl
//! nmcdr train    --scenario cloth-sport --trace-out run.jsonl \
//!                --profile-out profile.jsonl
//! nmcdr obs profile  --profile profile.jsonl --trace run.jsonl
//! nmcdr obs profile  --profile new-profile.jsonl --compare old-profile.jsonl
//! nmcdr obs report   --trace results/trace/run.jsonl
//! nmcdr obs validate --trace results/trace/run.jsonl
//! nmcdr obs flame    --in results/trace/run.jsonl --out flame.svg
//! nmcdr obs tail     --series chaos-series.jsonl --window 20
//! nmcdr obs slo      --series chaos-series.jsonl --require-alerts 1
//! nmcdr query    --addr 127.0.0.1:7878 --op trace > exemplars.jsonl
//! nmcdr bench    --record            # then later: nmcdr bench --compare
//! ```
//!
//! Argument parsing is deliberately dependency-free (`--key value`
//! pairs); see `nmcdr help`.

mod args;
mod chaos;
mod check;
mod commands;
mod obs;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        commands::print_help();
        return ExitCode::FAILURE;
    };
    // `obs` takes a positional action word (`obs report --trace f`),
    // which the --key parser would reject; split it off first.
    let (action, rest) = if cmd == "obs" {
        match rest.split_first() {
            Some((a, r)) if !a.starts_with("--") => (Some(a.clone()), r),
            _ => {
                eprintln!(
                    "error: usage: nmcdr obs <report|validate|flame|tail|slo|profile> \
                     --trace <file> (flame: --in <file> --out <svg>; tail/slo: \
                     --series <file>; profile: --profile <dump> [--compare <old>])"
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        (None, rest)
    };
    let parsed = match args::Args::parse(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => commands::generate(&parsed),
        "train" => commands::train(&parsed),
        "evaluate" => commands::evaluate(&parsed),
        "stats" => commands::stats(&parsed),
        "snapshot" => commands::snapshot(&parsed),
        "stream" => commands::stream(&parsed),
        "serve" => commands::serve(&parsed),
        "query" => commands::query(&parsed),
        "bench" => commands::bench(&parsed),
        "obs" => commands::obs(action.as_deref().unwrap_or(""), &parsed),
        "check" => check::check(&parsed),
        "chaos" => chaos::chaos(&parsed),
        "help" | "--help" | "-h" => {
            commands::print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}'; try `nmcdr help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
